package serve

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"subcouple/internal/model"
	"subcouple/internal/obs"
)

// Prometheus metric family names exposed by GET /metrics. Exported so the
// CI scrape check, cmd/benchreport and tests grep/read the same spellings
// the server registers.
const (
	// Per-endpoint HTTP telemetry, labeled {endpoint, code} / {endpoint}.
	MetricHTTPRequests   = "subserve_http_requests_total"
	MetricLatencySeconds = "subserve_http_request_seconds"
	// Batcher telemetry, labeled {model}.
	MetricQueueDepth        = "subserve_batch_queue_depth"
	MetricBatchSize         = "subserve_batch_size"
	MetricWindowWaitSeconds = "subserve_batch_window_wait_seconds"
	MetricBatchFlushes      = "subserve_batch_flushes_total"
	// Pool telemetry, labeled {model}.
	MetricPoolInUse       = "subserve_pool_in_use"
	MetricPoolWaitSeconds = "subserve_pool_wait_seconds"
	MetricPoolTimeouts    = "subserve_pool_timeouts_total"
)

// BatchSizeBuckets is the coalesced-batch-size histogram ladder: batches are
// small integers bounded by MaxBatch, so powers of two resolve them exactly
// where the latency ladder would lump everything into its first bucket.
var BatchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// Options configures a Server. The zero value is usable: NumCPU engines per
// model, immediate flushes, DefaultMaxBatch, no per-request timeout.
type Options struct {
	// PoolSize is the number of engines (the concurrency limit) per model;
	// <= 0 selects runtime.NumCPU().
	PoolSize int
	// Window is the micro-batching coalescing window; 0 flushes immediately
	// (still fusing whatever is already queued).
	Window time.Duration
	// MaxBatch bounds the columns fused into one flush (<= 0 selects
	// DefaultMaxBatch).
	MaxBatch int
	// Workers is the engine worker count for batched applies (0 = all CPUs);
	// responses are bitwise identical for any value.
	Workers int
	// Timeout bounds each request's admission + pool wait (0 = none).
	Timeout time.Duration
	// Mode selects the serving kernels for every engine in every pool:
	// model.ModeExact (the zero value), ModeDense or ModeFloat32. Non-exact
	// modes change apply rounding, so /fingerprint refuses with 400 and the
	// load-time fingerprint reported by /models is computed on a temporary
	// exact engine — it identifies the artifact, not the serving kernels.
	Mode model.Mode
	// DenseBudget caps dense-mode materialization, in total float64 entries
	// (<= 0 selects model.DefaultDenseBudget). Ignored outside ModeDense.
	DenseBudget int
	// Recorder and Tracer receive serving telemetry; both may be nil.
	Recorder *obs.Recorder
	Tracer   *obs.Tracer
	// Metrics is the live registry behind GET /metrics. When nil the
	// endpoint is not routed and every instrumentation site degrades to a
	// no-op (the obs handles are nil-safe), so metrics-off serving runs the
	// same code path.
	Metrics *obs.Metrics
	// ShedThreshold makes /readyz queue-depth-aware: when > 0 and the total
	// batcher queue depth (admitted-but-incomplete applies across all
	// models) exceeds it, /readyz reports 503 so load balancers route
	// around the saturated daemon. 0 disables shedding. Applies themselves
	// are never refused — only readiness sheds.
	ShedThreshold int
}

// servedModel is one registry entry: the decoded model plus its serving
// machinery and the fingerprint computed at load time.
type servedModel struct {
	name        string
	m           *model.Model
	pool        *Pool
	batcher     *Batcher
	fingerprint uint64
}

// Server is the HTTP face of the registry. Endpoints:
//
//	GET  /healthz              process liveness (always 200 while up)
//	GET  /readyz               200 once models are loaded, 503 while draining
//	GET  /models               JSON metadata for every loaded model
//	POST /apply                G·x; JSON or raw float64-LE body (see handleApply)
//	GET  /column               one operator column (?model=&j=&thresholded=&format=)
//	GET  /fingerprint          deterministic probe-apply hash through the live pool
type Server struct {
	opt    Options
	names  []string // sorted registry order
	models map[string]*servedModel

	// endpoints holds per-endpoint telemetry handles, created once per
	// endpoint name so repeated Handler() calls reuse the same series.
	endpoints map[string]*endpointMetrics

	ready    atomic.Bool
	draining atomic.Bool
}

// New returns an empty registry server.
func New(opt Options) *Server {
	return &Server{opt: opt, models: map[string]*servedModel{}, endpoints: map[string]*endpointMetrics{}}
}

// endpointMetrics is one endpoint's pre-resolved telemetry: a latency
// histogram plus one counter per status class, with the matching recorder
// keys precomputed so the per-request path does no string concatenation.
type endpointMetrics struct {
	name    string
	latency *obs.Histogram
	classes [4]*obs.Counter // index = status/100 - 2 (2xx..5xx)
	recReq  string          // "serve/req_<name>"
	recLat  string          // "serve/latency_us_<name>"
	recCls  [4]string       // "serve/<name>/2xx" .. "serve/<name>/5xx"
}

// statusClasses spells the label values for endpointMetrics.classes.
var statusClasses = [4]string{"2xx", "3xx", "4xx", "5xx"}

// endpoint returns (building on first use) the telemetry handles for name.
// With no Metrics registry the obs handles stay nil — every record is then
// a no-op — but the recorder keys are still precomputed.
func (s *Server) endpoint(name string) *endpointMetrics {
	if em, ok := s.endpoints[name]; ok {
		return em
	}
	em := &endpointMetrics{
		name:   name,
		recReq: "serve/req_" + name,
		recLat: "serve/latency_us_" + name,
	}
	for i, class := range statusClasses {
		em.recCls[i] = "serve/" + name + "/" + class
	}
	if ms := s.opt.Metrics; ms != nil {
		em.latency = ms.Histogram(MetricLatencySeconds, "request latency by endpoint, handler entry to last byte", "endpoint", name)
		for i, class := range statusClasses {
			em.classes[i] = ms.Counter(MetricHTTPRequests, "requests by endpoint and status class", "endpoint", name, "code", class)
		}
	}
	s.endpoints[name] = em
	return em
}

// classIndex maps an HTTP status to the endpointMetrics.classes slot,
// clamping anything exotic into 2xx/5xx.
func classIndex(status int) int {
	i := status/100 - 2
	if i < 0 {
		i = 0
	}
	if i > 3 {
		i = 3
	}
	return i
}

// statusWriter captures the status code a handler wrote (200 when the
// handler never calls WriteHeader explicitly).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// AddModel registers m under name, building its engine pool and batcher.
// The model must already be validated (model.Decode guarantees it).
func (s *Server) AddModel(name string, m *model.Model) error {
	if name == "" {
		return fmt.Errorf("serve: empty model name")
	}
	if _, ok := s.models[name]; ok {
		return fmt.Errorf("serve: duplicate model name %q", name)
	}
	pool, err := NewPool(m, s.opt.PoolSize,
		model.EngineOptions{Mode: s.opt.Mode, DenseBudget: s.opt.DenseBudget},
		s.opt.Recorder, s.opt.Tracer)
	if err != nil {
		return fmt.Errorf("serve: model %q: %w", name, err)
	}
	sm := &servedModel{
		name:    name,
		m:       m,
		pool:    pool,
		batcher: NewBatcher(pool, s.opt.Window, s.opt.MaxBatch, s.opt.Workers, s.opt.Recorder, s.opt.Tracer),
	}
	if s.opt.Metrics != nil {
		sm.pool.SetMetrics(s.opt.Metrics, name)
		sm.batcher.SetMetrics(s.opt.Metrics, name)
	}
	if s.opt.Mode == model.ModeExact {
		// The load-time fingerprint goes through a pool engine, so /models
		// reports the hash of the bytes this daemon will actually serve.
		eng, err := pool.Get(context.Background())
		if err != nil {
			return err
		}
		sm.fingerprint = eng.Fingerprint(s.opt.Workers)
		pool.Put(eng)
	} else {
		// Non-exact serving kernels change apply rounding, so their probe
		// hash would match no artifact. The fingerprint still identifies the
		// loaded artifact: compute it once on a throwaway exact engine.
		sm.fingerprint = model.NewEngine(m).Fingerprint(s.opt.Workers)
	}
	s.models[name] = sm
	s.names = append(s.names, name)
	sort.Strings(s.names)
	return nil
}

// LoadFile decodes one .scm artifact and registers it under its base file
// name (sans extension). It returns the registered name.
func (s *Server) LoadFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("serve: %w", err)
	}
	defer f.Close()
	m, err := model.Read(f)
	if err != nil {
		return "", fmt.Errorf("serve: load %s: %w", path, err)
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	if err := s.AddModel(name, m); err != nil {
		return "", err
	}
	return name, nil
}

// Names returns the registered model names in sorted order.
func (s *Server) Names() []string { return append([]string(nil), s.names...) }

// Model returns the registry entry's model, or nil.
func (s *Server) Model(name string) *model.Model {
	if sm := s.models[name]; sm != nil {
		return sm.m
	}
	return nil
}

// Fingerprint returns the load-time fingerprint of a registered model.
func (s *Server) Fingerprint(name string) (uint64, bool) {
	sm := s.models[name]
	if sm == nil {
		return 0, false
	}
	return sm.fingerprint, true
}

// SetReady flips /readyz; cmd/subserve arms it after the listener is bound.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Close begins the drain: /readyz starts failing, new applies are refused,
// and Close blocks until every in-flight batch has completed.
func (s *Server) Close() {
	s.draining.Store(true)
	for _, name := range s.names {
		s.models[name].batcher.Close()
	}
}

// Handler returns the routed HTTP handler. /metrics is routed only when a
// registry is configured; it stays scrapeable through the drain so the last
// requests of a shutting-down daemon are still observable.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("/readyz", s.instrument("readyz", s.handleReadyz))
	mux.HandleFunc("/models", s.instrument("models", s.handleModels))
	mux.HandleFunc("/apply", s.instrument("apply", s.handleApply))
	mux.HandleFunc("/column", s.instrument("column", s.handleColumn))
	mux.HandleFunc("/fingerprint", s.instrument("fingerprint", s.handleFingerprint))
	if s.opt.Metrics != nil {
		mux.HandleFunc("/metrics", s.instrument("metrics", s.handleMetrics))
	}
	return mux
}

// QueueDepth returns the total admitted-but-incomplete applies across all
// model batchers — the signal behind shedding readiness.
func (s *Server) QueueDepth() int {
	depth := 0
	for _, name := range s.names {
		depth += s.models[name].batcher.QueueDepth()
	}
	return depth
}

// PoolInUse returns the total checked-out engines across all model pools.
func (s *Server) PoolInUse() int {
	n := 0
	for _, name := range s.names {
		n += s.models[name].pool.InUse()
	}
	return n
}

// instrument wraps a handler with the per-endpoint telemetry: the recorder's
// request counter and latency histogram (microseconds; power-of-two
// buckets), the live registry's latency histogram (seconds; the log-spaced
// ladder), and one counter per status class — so a 400 dimension error and a
// recovered-panic 500 land in different series instead of one shared
// "errors" count. Every handle is resolved here, once, keeping the
// per-request path free of lookups and allocation beyond the statusWriter.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	rec := s.opt.Recorder
	em := s.endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec.Add(em.recReq, 1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		el := time.Since(start)
		rec.Observe(em.recLat, float64(el.Microseconds()))
		ci := classIndex(sw.status)
		rec.Add(em.recCls[ci], 1)
		// Class before latency: a concurrent ServingStats snapshot then never
		// sees more latency samples than counted requests (the invariant
		// ValidateRunReport checks).
		em.classes[ci].Inc()
		em.latency.Observe(el.Seconds())
	}
}

// reqCtx applies the per-request timeout.
func (s *Server) reqCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.opt.Timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.opt.Timeout)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	io.WriteString(w, "ok\n")
}

// readyzResponse is the JSON /readyz body. QueueDepth and PoolInUse are
// reported on both 200 and 503 so a gateway can watch saturation approach
// the shed threshold, not just cross it.
type readyzResponse struct {
	Ready      bool   `json:"ready"`
	QueueDepth int    `json:"queueDepth"`
	PoolInUse  int    `json:"poolInUse"`
	Reason     string `json:"reason,omitempty"`
}

// handleReadyz reports readiness with live saturation: 503 while unready or
// draining as before, and — when Options.ShedThreshold > 0 — also while the
// total batcher queue depth exceeds the threshold. Shedding is advisory
// back-pressure for load balancers; admitted applies always complete, so
// readiness recovers as soon as the queue drains.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	resp := readyzResponse{
		Ready:      true,
		QueueDepth: s.QueueDepth(),
		PoolInUse:  s.PoolInUse(),
	}
	switch {
	case !s.ready.Load():
		resp.Ready, resp.Reason = false, "not ready"
	case s.draining.Load():
		resp.Ready, resp.Reason = false, "draining"
	case s.opt.ShedThreshold > 0 && resp.QueueDepth > s.opt.ShedThreshold:
		resp.Ready, resp.Reason = false,
			fmt.Sprintf("shedding: queue depth %d > threshold %d", resp.QueueDepth, s.opt.ShedThreshold)
	}
	if !resp.Ready {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(resp)
		return
	}
	writeJSON(w, resp)
}

// handleMetrics serves the live registry in Prometheus text exposition
// format. It is deliberately not gated on draining: the scrape must work
// until the listener closes so a terminating daemon's final counts are
// collectable.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.opt.Metrics.WritePrometheus(w)
}

// modelInfo is one /models row.
type modelInfo struct {
	Name        string `json:"name"`
	Method      string `json:"method"`
	Contacts    int    `json:"contacts"`
	Solves      int    `json:"solves"`
	GwNNZ       int    `json:"gw_nnz"`
	GwtNNZ      int    `json:"gwt_nnz,omitempty"`
	Thresholded bool   `json:"thresholded"`
	PoolSize    int    `json:"pool_size"`
	Mode        string `json:"mode"`
	Fingerprint string `json:"fingerprint"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	infos := make([]modelInfo, 0, len(s.names))
	for _, name := range s.names {
		sm := s.models[name]
		info := modelInfo{
			Name:        name,
			Method:      sm.m.Method,
			Contacts:    sm.m.N,
			Solves:      sm.m.Solves,
			GwNNZ:       sm.m.Gw.NNZ(),
			Thresholded: sm.m.Gwt != nil,
			PoolSize:    sm.pool.Size(),
			Mode:        s.opt.Mode.String(),
			Fingerprint: fmt.Sprintf("%016x", sm.fingerprint),
		}
		if sm.m.Gwt != nil {
			info.GwtNNZ = sm.m.Gwt.NNZ()
		}
		infos = append(infos, info)
	}
	writeJSON(w, infos)
}

// lookup resolves the model named in the request (query param or JSON
// field). With exactly one model loaded the name may be omitted.
func (s *Server) lookup(w http.ResponseWriter, name string) *servedModel {
	if name == "" {
		if len(s.names) == 1 {
			return s.models[s.names[0]]
		}
		http.Error(w, fmt.Sprintf("model name required (loaded: %s)", strings.Join(s.names, ", ")),
			http.StatusBadRequest)
		return nil
	}
	sm := s.models[name]
	if sm == nil {
		http.Error(w, fmt.Sprintf("unknown model %q (loaded: %s)", name, strings.Join(s.names, ", ")),
			http.StatusNotFound)
		return nil
	}
	return sm
}

// applyRequest is the JSON /apply body.
type applyRequest struct {
	Model       string    `json:"model,omitempty"`
	X           []float64 `json:"x"`
	Thresholded bool      `json:"thresholded,omitempty"`
}

// applyResponse is the JSON /apply and /column reply. encoding/json prints
// float64s in the shortest form that parses back to the identical bits, so
// a JSON response round-trips bitwise just like the raw codec.
type applyResponse struct {
	Model string    `json:"model"`
	N     int       `json:"n"`
	Y     []float64 `json:"y"`
}

// handleApply computes y = G·x. Two codecs share the endpoint, selected by
// Content-Type:
//
//   - application/json (default): body {"model":..., "x":[...], "thresholded":bool},
//     reply {"model":..., "n":..., "y":[...]}.
//   - application/octet-stream: body is exactly 8·N bytes of little-endian
//     float64; model and thresholded come from ?model= and ?thresholded=1;
//     the reply is 8·N bytes in the same encoding.
//
// x must have exactly the model's contact count; anything else is a 400
// naming both lengths, checked before the request can reach an engine.
func (s *Server) handleApply(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	raw := strings.HasPrefix(r.Header.Get("Content-Type"), "application/octet-stream")

	var (
		sm          *servedModel
		x           []float64
		thresholded bool
	)
	if raw {
		sm = s.lookup(w, r.URL.Query().Get("model"))
		if sm == nil {
			return
		}
		thresholded = queryBool(r, "thresholded")
		var ok bool
		x, ok = readRawVector(w, r, sm.m.N)
		if !ok {
			return
		}
	} else {
		var req applyRequest
		if !readJSON(w, r, &req) {
			return
		}
		sm = s.lookup(w, req.Model)
		if sm == nil {
			return
		}
		thresholded = req.Thresholded
		x = req.X
	}
	if len(x) != sm.m.N {
		http.Error(w, fmt.Sprintf("apply x has length %d, want %d (model %s)", len(x), sm.m.N, sm.name),
			http.StatusBadRequest)
		return
	}
	if thresholded && sm.m.Gwt == nil {
		http.Error(w, fmt.Sprintf("model %s has no thresholded representation", sm.name),
			http.StatusBadRequest)
		return
	}

	ctx, cancel := s.reqCtx(r)
	defer cancel()
	y := make([]float64, sm.m.N)
	if err := sm.batcher.Apply(ctx, y, x, thresholded); err != nil {
		s.applyError(w, err)
		return
	}
	if raw {
		writeRawVector(w, y)
		return
	}
	writeJSON(w, applyResponse{Model: sm.name, N: sm.m.N, Y: y})
}

// handleColumn serves one operator column: GET /column?model=&j=&thresholded=1
// (&format=raw for the binary codec). A column apply is small, so it goes
// straight through the pool rather than the batcher.
func (s *Server) handleColumn(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	sm := s.lookup(w, r.URL.Query().Get("model"))
	if sm == nil {
		return
	}
	j, err := strconv.Atoi(r.URL.Query().Get("j"))
	if err != nil {
		http.Error(w, fmt.Sprintf("column index j=%q is not an integer", r.URL.Query().Get("j")),
			http.StatusBadRequest)
		return
	}
	if j < 0 || j >= sm.m.N {
		http.Error(w, fmt.Sprintf("column %d out of range [0,%d) (model %s)", j, sm.m.N, sm.name),
			http.StatusBadRequest)
		return
	}
	thresholded := queryBool(r, "thresholded")
	if thresholded && sm.m.Gwt == nil {
		http.Error(w, fmt.Sprintf("model %s has no thresholded representation", sm.name),
			http.StatusBadRequest)
		return
	}
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}

	ctx, cancel := s.reqCtx(r)
	defer cancel()
	eng, err := sm.pool.Get(ctx)
	if err != nil {
		s.applyError(w, err)
		return
	}
	y := make([]float64, sm.m.N)
	// The deferred Put keeps a panicking engine from leaking out of the
	// pool (a leak would shrink the concurrency limit for the rest of the
	// daemon's life); the recover turns the panic into a 500 instead of a
	// dropped connection.
	if err := func() (err error) {
		defer sm.pool.Put(eng)
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("column panic: %v", r)
			}
		}()
		if thresholded {
			eng.ColumnThresholdedInto(y, j)
		} else {
			eng.ColumnInto(y, j)
		}
		return nil
	}(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if r.URL.Query().Get("format") == "raw" {
		writeRawVector(w, y)
		return
	}
	writeJSON(w, applyResponse{Model: sm.name, N: sm.m.N, Y: y})
}

// handleFingerprint recomputes the deterministic probe-apply hash through a
// live pool engine, so the value reflects the serving path as it is right
// now (and must equal both the load-time /models value and what
// `subx -load` prints for the same artifact). It is an exactness check by
// construction, so non-exact serving modes are refused with 400: their
// rounding differs and the hash would match no artifact (the load-time
// exact fingerprint is still available from /models).
func (s *Server) handleFingerprint(w http.ResponseWriter, r *http.Request) {
	sm := s.lookup(w, r.URL.Query().Get("model"))
	if sm == nil {
		return
	}
	if s.opt.Mode != model.ModeExact {
		http.Error(w, fmt.Sprintf("fingerprint requires exact serving kernels; daemon is in %s mode (see /models for the load-time exact fingerprint)", s.opt.Mode),
			http.StatusBadRequest)
		return
	}
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	eng, err := sm.pool.Get(ctx)
	if err != nil {
		s.applyError(w, err)
		return
	}
	var fp uint64
	if err := func() (err error) {
		defer sm.pool.Put(eng)
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("fingerprint panic: %v", r)
			}
		}()
		fp = eng.Fingerprint(s.opt.Workers)
		return nil
	}(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]string{"model": sm.name, "fingerprint": fmt.Sprintf("%016x", fp)})
}

// ServingStats snapshots the live registry into the run report's "serving"
// block: final queue-depth / pool gauges plus per-endpoint status-class
// counts and latency quantiles. Returns nil when no registry is configured
// (the report then simply omits the block).
func (s *Server) ServingStats() *obs.ServingStats {
	if s.opt.Metrics == nil {
		return nil
	}
	st := &obs.ServingStats{
		QueueDepth: s.QueueDepth(),
		PoolInUse:  s.PoolInUse(),
		Endpoints:  map[string]obs.ServingEndpointStat{},
	}
	for name, em := range s.endpoints {
		snap := em.latency.Snapshot()
		ep := obs.ServingEndpointStat{
			Requests:          map[string]int64{},
			LatencyCount:      snap.Count,
			LatencyP50Seconds: snap.Quantile(0.50),
			LatencyP95Seconds: snap.Quantile(0.95),
			LatencyP99Seconds: snap.Quantile(0.99),
		}
		if snap.Count > 0 {
			ep.LatencyMeanSeconds = snap.Sum / float64(snap.Count)
		}
		for i, class := range statusClasses {
			if v := em.classes[i].Value(); v > 0 {
				ep.Requests[class] = v
			}
		}
		st.Endpoints[name] = ep
	}
	return st
}

// applyError maps serving errors to status codes: refusal while draining
// and pool/admission timeouts are 503 (retryable elsewhere), recovered
// panics on the hot path are 500 (a server fault, not the caller's),
// everything else is a 400-class caller problem. The per-status-class
// counters in instrument pick up the split, so client errors can't mask
// server faults the way the old single serve/errors counter let them.
func (s *Server) applyError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrClosed), errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, ErrApplyPanic):
		http.Error(w, err.Error(), http.StatusInternalServerError)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

// readJSON strictly decodes the request body into v (unknown fields and
// trailing garbage are errors).
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad JSON request: %v", err), http.StatusBadRequest)
		return false
	}
	if dec.More() {
		http.Error(w, "bad JSON request: trailing data", http.StatusBadRequest)
		return false
	}
	return true
}

// readRawVector reads the binary codec body: exactly 8·n little-endian
// float64 bytes.
func readRawVector(w http.ResponseWriter, r *http.Request, n int) ([]float64, bool) {
	want := 8 * n
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, int64(want)+1))
	if err != nil {
		http.Error(w, fmt.Sprintf("raw body: %v (want exactly %d bytes = %d float64-LE)", err, want, n),
			http.StatusBadRequest)
		return nil, false
	}
	if len(body) != want {
		http.Error(w, fmt.Sprintf("raw body has %d bytes, want exactly %d (%d float64-LE)", len(body), want, n),
			http.StatusBadRequest)
		return nil, false
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
	}
	return x, true
}

// writeRawVector writes y as 8·len(y) little-endian float64 bytes.
func writeRawVector(w http.ResponseWriter, y []float64) {
	buf := make([]byte, 8*len(y))
	for i, v := range y {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
	w.Write(buf)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func queryBool(r *http.Request, key string) bool {
	switch strings.ToLower(r.URL.Query().Get(key)) {
	case "1", "true", "yes", "on":
		return true
	}
	return false
}
