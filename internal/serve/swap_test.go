package serve_test

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"subcouple/internal/core"
	"subcouple/internal/serve"
)

// TestHotSwapBitwiseOverHTTP is the tentpole end-to-end guarantee: with
// client goroutines continuously firing /apply (both codecs), the alias is
// hot-swapped back and forth between two models. Every HTTP response must
// be bitwise identical to one of the two models' direct-engine outputs —
// before, during, and after the flips — and no request may fail: a request
// displaced mid-swap is retried by the handler against the new activation,
// never refused and never blended.
func TestHotSwapBitwiseOverHTTP(t *testing.T) {
	mA := testModel(t, core.LowRank)
	mB := testModel(t, core.Wavelet)
	s, ts, name := newTestServer(t, mA, serve.Options{PoolSize: 2, Window: 100 * time.Microsecond})

	reg := s.Registry()
	fpB, _, err := reg.Load(mB)
	if err != nil {
		t.Fatal(err)
	}
	fpA, ok := s.Fingerprint(name)
	if !ok || fpA == fpB {
		t.Fatalf("fingerprints: %016x vs %016x (ok=%v)", fpA, fpB, ok)
	}

	const clients = 6
	const perClient = 30
	const swaps = 12

	var wg sync.WaitGroup
	var blended atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			x := probeVec(mA.N, c)
			wantA, wantB := direct(mA, x, false), direct(mB, x, false)
			for i := 0; i < perClient; i++ {
				var y []float64
				if i%2 == 0 {
					y = postJSON(t, ts, name, x, false)
				} else {
					y = postRaw(t, ts, name, x, false)
				}
				okA, okB := true, true
				for j := range y {
					if y[j] != wantA[j] {
						okA = false
					}
					if y[j] != wantB[j] {
						okB = false
					}
					if !okA && !okB {
						break
					}
				}
				if !okA && !okB {
					blended.Add(1)
				}
			}
		}(c)
	}

	// Flip the alias while the clients hammer it; end on model B.
	fps := [2]uint64{fpA, fpB}
	for i := 0; i < swaps; i++ {
		if _, err := reg.Swap(name, fps[(i+1)%2]); err != nil {
			t.Fatal(err)
		}
	}
	// Land on model B regardless of swap-count parity.
	if _, err := reg.Swap(name, fpB); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if n := blended.Load(); n > 0 {
		t.Fatalf("%d responses matched neither model (blended or torn apply across swap)", n)
	}

	// After the last swap the alias serves exactly model B, bitwise.
	x := probeVec(mA.N, 99)
	bitwiseEqual(t, "post-swap", postJSON(t, ts, name, x, false), direct(mB, x, false))
	if fp, _ := s.Fingerprint(name); fp != fpB {
		t.Fatalf("alias serves %016x, want %016x", fp, fpB)
	}
}

// TestCloseRacesAddModel is the satellite regression: Server.Close
// concurrent with AddModel/LoadFile must be safe (-race clean) and any
// mutation that loses the race fails with ErrServerClosed instead of
// mutating a closed server.
func TestCloseRacesAddModel(t *testing.T) {
	m := testModel(t, core.LowRank)
	const rounds = 20
	for round := 0; round < rounds; round++ {
		s := serve.New(serve.Options{PoolSize: 1})
		var wg sync.WaitGroup
		errs := make([]error, 4)
		for i := range errs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = s.AddModel(fmt.Sprintf("m%d", i), m)
			}(i)
		}
		s.Close()
		wg.Wait()
		for i, err := range errs {
			if err != nil && !errors.Is(err, serve.ErrServerClosed) {
				t.Fatalf("round %d: AddModel m%d: %v (want nil or ErrServerClosed)", round, i, err)
			}
		}
	}

	// Post-Close mutations always refuse.
	s := serve.New(serve.Options{PoolSize: 1})
	s.Close()
	if err := s.AddModel("late", m); !errors.Is(err, serve.ErrServerClosed) {
		t.Fatalf("AddModel after Close: %v, want ErrServerClosed", err)
	}
	if _, err := s.LoadFile(saveArtifact(t, m, "late.scm")); !errors.Is(err, serve.ErrServerClosed) {
		t.Fatalf("LoadFile after Close: %v, want ErrServerClosed", err)
	}
}
