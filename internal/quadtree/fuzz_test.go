package quadtree

import (
	"testing"

	"subcouple/internal/geom"
)

// fuzzLayout decodes up to 12 integer-aligned rectangles from raw fuzz
// data (4 bytes each) onto a 16×16 surface, mirroring the geom fuzz
// generator.
func fuzzLayout(data []byte) *geom.Layout {
	const grid = 16
	l := &geom.Layout{A: grid, B: grid}
	for k := 0; k+4 <= len(data) && len(l.Contacts) < 12; k += 4 {
		x0 := float64(int(data[k]) % grid)
		y0 := float64(int(data[k+1]) % grid)
		w := float64(1 + int(data[k+2])%(grid-int(x0)))
		h := float64(1 + int(data[k+3])%(grid-int(y0)))
		l.Contacts = append(l.Contacts, geom.Contact{
			Rect:  geom.Rect{X0: x0, Y0: y0, X1: x0 + w, Y1: y0 + h},
			Group: len(l.Contacts),
		})
	}
	return l
}

// FuzzBuild checks the hierarchy invariants for arbitrary layouts: Build
// never panics, every contact is assigned to exactly one square per level,
// and the local/interactive sets are disjoint with the right geometry.
func FuzzBuild(f *testing.F) {
	f.Add([]byte{0, 0, 15, 15, 3, 3, 4, 4}, 3)
	f.Add([]byte{1, 1, 6, 6, 8, 8, 7, 7, 0, 8, 8, 4}, 2)
	f.Add([]byte{5, 0, 10, 2, 0, 5, 2, 10}, 4)
	f.Fuzz(func(t *testing.T, data []byte, levelSel int) {
		raw := fuzzLayout(data)
		maxLevel := 2 + ((levelSel%3)+3)%3 // 2, 3 or 4
		l := raw.SplitToGrid(raw.A / float64(int(1)<<maxLevel))
		tree, err := Build(l, maxLevel)
		if err != nil {
			// Build may reject a layout, but only cleanly.
			return
		}
		for lev := 0; lev <= maxLevel; lev++ {
			seen := make([]int, l.N())
			for _, sq := range tree.SquaresAt(lev) {
				for _, ci := range sq.Contacts {
					seen[ci]++
				}
			}
			for ci, n := range seen {
				if n != 1 {
					t.Fatalf("level %d: contact %d assigned %d times", lev, ci, n)
				}
			}
		}
		for lev := 0; lev <= maxLevel; lev++ {
			for _, sq := range tree.SquaresAt(lev) {
				local := tree.Local(sq)
				inter := tree.Interactive(sq)
				inLocal := map[int]bool{}
				self := false
				for _, q := range local {
					inLocal[q.ID] = true
					if q == sq {
						self = true
					}
					if chebDist(sq, q) > 1 {
						t.Fatalf("level %d square %d: local square %d at distance > 1", lev, sq.ID, q.ID)
					}
				}
				if !self {
					t.Fatalf("level %d square %d: L_s does not contain s", lev, sq.ID)
				}
				for _, q := range inter {
					if inLocal[q.ID] {
						t.Fatalf("level %d square %d: square %d in both I_s and L_s", lev, sq.ID, q.ID)
					}
					if chebDist(sq, q) < 2 {
						t.Fatalf("level %d square %d: interactive square %d at distance < 2", lev, sq.ID, q.ID)
					}
				}
				if got, want := len(tree.Proximity(sq)), len(local)+len(inter); got != want {
					t.Fatalf("level %d square %d: |P_s| = %d, want |L_s|+|I_s| = %d", lev, sq.ID, got, want)
				}
			}
		}
	})
}
