// Package quadtree implements the multilevel hierarchy of squares on the
// substrate top surface (thesis §3.2–3.3): at level l the surface is split
// into 2^l × 2^l squares; contacts are assigned to the finest-level square
// containing them; and each square knows its local squares L_s (itself and
// its neighbors), its interactive squares I_s (same-level squares at
// distance ≥ 2 whose parents are neighbors, Fig 4-4), and P_s = I_s ∪ L_s.
package quadtree

import (
	"fmt"

	"subcouple/internal/geom"
)

// Square is one square of the hierarchy.
type Square struct {
	Level, I, J int   // level and grid position, 0 <= I,J < 2^Level
	Contacts    []int // indices of contacts inside this square
	ID          int   // index within its level's row-major slice
}

// Tree is the full multilevel hierarchy for a layout.
type Tree struct {
	MaxLevel int
	Side     float64 // surface side length (surface assumed square)
	Layout   *geom.Layout
	levels   [][]*Square // levels[l] has 4^l squares, row-major by (I, J)
}

// Build constructs the tree for a layout whose surface is square, with
// maxLevel levels of refinement. Every contact must lie entirely within one
// finest-level square (run geom.Layout.SplitToGrid first if needed).
func Build(l *geom.Layout, maxLevel int) (*Tree, error) {
	if l.A != l.B {
		return nil, fmt.Errorf("quadtree: surface must be square, got %g x %g", l.A, l.B)
	}
	if maxLevel < 2 {
		return nil, fmt.Errorf("quadtree: maxLevel must be >= 2, got %d", maxLevel)
	}
	t := &Tree{MaxLevel: maxLevel, Side: l.A, Layout: l}
	t.levels = make([][]*Square, maxLevel+1)
	for lev := 0; lev <= maxLevel; lev++ {
		n := 1 << lev
		t.levels[lev] = make([]*Square, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				t.levels[lev][i*n+j] = &Square{Level: lev, I: i, J: j, ID: i*n + j}
			}
		}
	}
	// Assign contacts bottom-up: finest square from the contact centroid,
	// then propagate to ancestors.
	cell := t.Side / float64(int(1)<<maxLevel)
	for ci, c := range l.Contacts {
		i := int(c.CenterX() / cell)
		j := int(c.CenterY() / cell)
		n := 1 << maxLevel
		if i < 0 || j < 0 || i >= n || j >= n {
			return nil, fmt.Errorf("quadtree: contact %d outside surface", ci)
		}
		// Verify containment in the finest square (allow boundary contact).
		x0, y0 := float64(i)*cell, float64(j)*cell
		const eps = 1e-9
		if c.X0 < x0-eps || c.Y0 < y0-eps || c.X1 > x0+cell+eps || c.Y1 > y0+cell+eps {
			return nil, fmt.Errorf("quadtree: contact %d crosses finest-square boundary; split the layout first", ci)
		}
		for lev := maxLevel; lev >= 0; lev-- {
			sq := t.levels[lev][(i>>(maxLevel-lev))*(1<<lev)+(j>>(maxLevel-lev))]
			sq.Contacts = append(sq.Contacts, ci)
		}
	}
	return t, nil
}

// ChooseMaxLevel returns the smallest level >= 2 such that splitting the
// layout at that level's square size yields at most maxPerSquare contact
// pieces per finest square, capped at levelCap.
func ChooseMaxLevel(l *geom.Layout, maxPerSquare, levelCap int) int {
	for lev := 2; lev < levelCap; lev++ {
		cell := l.A / float64(int(1)<<lev)
		split := l.SplitToGrid(cell)
		counts := map[[2]int]int{}
		ok := true
		for _, c := range split.Contacts {
			key := [2]int{int(c.CenterX() / cell), int(c.CenterY() / cell)}
			counts[key]++
			if counts[key] > maxPerSquare {
				ok = false
				break
			}
		}
		if ok {
			return lev
		}
	}
	return levelCap
}

// At returns the square at (level, i, j).
func (t *Tree) At(level, i, j int) *Square {
	n := 1 << level
	return t.levels[level][i*n+j]
}

// SquaresAt returns all squares at a level, row-major.
func (t *Tree) SquaresAt(level int) []*Square { return t.levels[level] }

// Parent returns the parent square (nil at level 0).
func (t *Tree) Parent(s *Square) *Square {
	if s.Level == 0 {
		return nil
	}
	return t.At(s.Level-1, s.I/2, s.J/2)
}

// Children returns the four children (nil slice at the finest level), in
// quadrant order: (2i,2j), (2i,2j+1), (2i+1,2j), (2i+1,2j+1).
func (t *Tree) Children(s *Square) []*Square {
	if s.Level == t.MaxLevel {
		return nil
	}
	return []*Square{
		t.At(s.Level+1, 2*s.I, 2*s.J),
		t.At(s.Level+1, 2*s.I, 2*s.J+1),
		t.At(s.Level+1, 2*s.I+1, 2*s.J),
		t.At(s.Level+1, 2*s.I+1, 2*s.J+1),
	}
}

// chebDist returns the Chebyshev distance between two same-level squares.
func chebDist(a, b *Square) int {
	di, dj := a.I-b.I, a.J-b.J
	if di < 0 {
		di = -di
	}
	if dj < 0 {
		dj = -dj
	}
	if di > dj {
		return di
	}
	return dj
}

// Local returns L_s: s itself and its same-level neighbors (Chebyshev
// distance <= 1).
func (t *Tree) Local(s *Square) []*Square {
	var out []*Square
	n := 1 << s.Level
	for di := -1; di <= 1; di++ {
		for dj := -1; dj <= 1; dj++ {
			i, j := s.I+di, s.J+dj
			if i >= 0 && j >= 0 && i < n && j < n {
				out = append(out, t.At(s.Level, i, j))
			}
		}
	}
	return out
}

// Interactive returns I_s: same-level squares separated from s by at least
// one square whose parent squares are the same as or neighbors of s's
// parent (Fig 4-4). At levels 0 and 1 the interactive set is empty.
func (t *Tree) Interactive(s *Square) []*Square {
	if s.Level < 2 {
		return nil
	}
	p := t.Parent(s)
	var out []*Square
	n := 1 << s.Level
	// Children of parent's 3x3 neighborhood span indices
	// [2(pI-1), 2(pI+1)+1] in each axis.
	for i := 2 * (p.I - 1); i <= 2*(p.I+1)+1; i++ {
		if i < 0 || i >= n {
			continue
		}
		for j := 2 * (p.J - 1); j <= 2*(p.J+1)+1; j++ {
			if j < 0 || j >= n {
				continue
			}
			q := t.At(s.Level, i, j)
			if chebDist(s, q) >= 2 {
				out = append(out, q)
			}
		}
	}
	return out
}

// Proximity returns P_s = I_s ∪ L_s, which equals the set of children of
// L_parent(s) (thesis §4.3.3).
func (t *Tree) Proximity(s *Square) []*Square {
	out := t.Local(s)
	out = append(out, t.Interactive(s)...)
	return out
}

// ContactsOf returns the concatenated contact indices of a set of squares.
func ContactsOf(squares []*Square) []int {
	var out []int
	for _, q := range squares {
		out = append(out, q.Contacts...)
	}
	return out
}

// Center returns the centroid of a square.
func (t *Tree) Center(s *Square) (x, y float64) {
	side := t.Side / float64(int(1)<<s.Level)
	return (float64(s.I) + 0.5) * side, (float64(s.J) + 0.5) * side
}

// SideAt returns the side length of squares at a level.
func (t *Tree) SideAt(level int) float64 { return t.Side / float64(int(1)<<level) }

// Mod3Class returns the combine-solves class (i mod 3, j mod 3) of a square
// (thesis §3.5, Fig 3-5): squares in the same class on the same level are at
// least three squares apart, so their basis-vector responses can be
// extracted from a single black-box solve.
func Mod3Class(s *Square) (int, int) { return s.I % 3, s.J % 3 }

// QuadrantOrder returns the finest-level squares of the tree in
// quadrant-hierarchical order (thesis §3.7.1): top-left quadrant first, then
// top-right, bottom-left, bottom-right, recursively. "Top" is taken as
// smaller I (x index) and "left" as smaller J.
func (t *Tree) QuadrantOrder(level int) []*Square {
	var out []*Square
	var rec func(lev, i, j int)
	rec = func(lev, i, j int) {
		if lev == level {
			out = append(out, t.At(lev, i, j))
			return
		}
		rec(lev+1, 2*i, 2*j)
		rec(lev+1, 2*i, 2*j+1)
		rec(lev+1, 2*i+1, 2*j)
		rec(lev+1, 2*i+1, 2*j+1)
	}
	rec(0, 0, 0)
	return out
}
