package quadtree

import (
	"testing"

	"subcouple/internal/geom"
)

func buildTestTree(t *testing.T, maxLevel int) *Tree {
	t.Helper()
	l := geom.RegularGrid(64, 64, 16, 16, 2)
	tree, err := Build(l, maxLevel)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestBuildAssignsAllContacts(t *testing.T) {
	tree := buildTestTree(t, 4)
	for lev := 0; lev <= 4; lev++ {
		total := 0
		for _, s := range tree.SquaresAt(lev) {
			total += len(s.Contacts)
		}
		if total != 256 {
			t.Fatalf("level %d holds %d contacts, want 256", lev, total)
		}
	}
	// Finest level: one contact per square for this layout.
	for _, s := range tree.SquaresAt(4) {
		if len(s.Contacts) != 1 {
			t.Fatalf("finest square (%d,%d) has %d contacts", s.I, s.J, len(s.Contacts))
		}
	}
}

func TestBuildRejectsCrossingContacts(t *testing.T) {
	l := &geom.Layout{A: 16, B: 16}
	l.Contacts = append(l.Contacts, geom.Contact{Rect: geom.Rect{X0: 3, Y0: 3, X1: 6, Y1: 6}})
	if _, err := Build(l, 3); err == nil {
		t.Fatalf("expected error for contact crossing finest square boundary")
	}
}

func TestParentChildRelations(t *testing.T) {
	tree := buildTestTree(t, 4)
	for lev := 0; lev < 4; lev++ {
		for _, s := range tree.SquaresAt(lev) {
			for _, c := range tree.Children(s) {
				if tree.Parent(c) != s {
					t.Fatalf("parent/child mismatch at level %d", lev)
				}
			}
		}
	}
	if tree.Parent(tree.At(0, 0, 0)) != nil {
		t.Fatalf("root has a parent")
	}
	if tree.Children(tree.At(4, 0, 0)) != nil {
		t.Fatalf("finest square has children")
	}
}

func TestLocalAndInteractive(t *testing.T) {
	tree := buildTestTree(t, 4)
	// Interior square: 9 local, up to 27 interactive.
	s := tree.At(3, 4, 4)
	if n := len(tree.Local(s)); n != 9 {
		t.Fatalf("interior local = %d want 9", n)
	}
	is := tree.Interactive(s)
	if len(is) > 27 || len(is) == 0 {
		t.Fatalf("interactive size %d out of range", len(is))
	}
	for _, q := range is {
		if chebDist(s, q) < 2 {
			t.Fatalf("interactive square too close: (%d,%d)", q.I, q.J)
		}
		if chebDist(tree.Parent(s), tree.Parent(q)) > 1 {
			t.Fatalf("interactive square's parent not a neighbor")
		}
	}
	// Corner square has 4 local squares.
	c := tree.At(3, 0, 0)
	if n := len(tree.Local(c)); n != 4 {
		t.Fatalf("corner local = %d want 4", n)
	}
	// Levels 0 and 1 have empty interactive sets.
	if tree.Interactive(tree.At(1, 0, 0)) != nil {
		t.Fatalf("level-1 interactive must be empty")
	}
}

func TestInteractiveSymmetry(t *testing.T) {
	tree := buildTestTree(t, 4)
	for lev := 2; lev <= 4; lev++ {
		for _, s := range tree.SquaresAt(lev) {
			for _, d := range tree.Interactive(s) {
				found := false
				for _, back := range tree.Interactive(d) {
					if back == s {
						found = true
					}
				}
				if !found {
					t.Fatalf("interactive not symmetric: (%d,%d)->(%d,%d) at level %d", s.I, s.J, d.I, d.J, lev)
				}
			}
		}
	}
}

func TestProximityEqualsChildrenOfParentLocal(t *testing.T) {
	tree := buildTestTree(t, 4)
	for lev := 3; lev <= 4; lev++ {
		for _, s := range tree.SquaresAt(lev) {
			want := map[*Square]bool{}
			for _, pl := range tree.Local(tree.Parent(s)) {
				for _, c := range tree.Children(pl) {
					want[c] = true
				}
			}
			got := tree.Proximity(s)
			if len(got) != len(want) {
				t.Fatalf("level %d square (%d,%d): |P_s|=%d want %d", lev, s.I, s.J, len(got), len(want))
			}
			for _, q := range got {
				if !want[q] {
					t.Fatalf("P_s contains unexpected square (%d,%d)", q.I, q.J)
				}
			}
		}
	}
}

func TestProximityCoversAllAtLevel2(t *testing.T) {
	tree := buildTestTree(t, 4)
	for _, s := range tree.SquaresAt(2) {
		if len(tree.Proximity(s)) != 16 {
			t.Fatalf("level-2 P_s must cover all 16 squares, got %d", len(tree.Proximity(s)))
		}
	}
}

func TestMod3ClassSeparation(t *testing.T) {
	tree := buildTestTree(t, 4)
	squares := tree.SquaresAt(4)
	for a := range squares {
		for b := range squares {
			if a == b {
				continue
			}
			ai, aj := Mod3Class(squares[a])
			bi, bj := Mod3Class(squares[b])
			if ai == bi && aj == bj && chebDist(squares[a], squares[b]) < 3 {
				t.Fatalf("same class squares closer than 3")
			}
		}
	}
}

func TestQuadrantOrder(t *testing.T) {
	tree := buildTestTree(t, 4)
	ord := tree.QuadrantOrder(2)
	if len(ord) != 16 {
		t.Fatalf("order length %d", len(ord))
	}
	seen := map[int]bool{}
	for _, s := range ord {
		if seen[s.ID] {
			t.Fatalf("duplicate square in quadrant order")
		}
		seen[s.ID] = true
	}
	// First four entries are the top-left quadrant of the 4x4 grid.
	for _, s := range ord[:4] {
		if s.I >= 2 || s.J >= 2 {
			t.Fatalf("quadrant order wrong: (%d,%d) in first block", s.I, s.J)
		}
	}
}

func TestCenterAndSide(t *testing.T) {
	tree := buildTestTree(t, 4)
	x, y := tree.Center(tree.At(2, 1, 2))
	if x != 24 || y != 40 {
		t.Fatalf("center = (%g,%g)", x, y)
	}
	if tree.SideAt(3) != 8 {
		t.Fatalf("side = %g", tree.SideAt(3))
	}
}

func TestChooseMaxLevel(t *testing.T) {
	l := geom.RegularGrid(64, 64, 16, 16, 2)
	lev := ChooseMaxLevel(l, 1, 8)
	if lev != 4 {
		t.Fatalf("ChooseMaxLevel = %d want 4", lev)
	}
	lev = ChooseMaxLevel(l, 4, 8)
	if lev != 3 {
		t.Fatalf("ChooseMaxLevel(4 per square) = %d want 3", lev)
	}
}

func TestContactsOf(t *testing.T) {
	tree := buildTestTree(t, 4)
	all := ContactsOf(tree.SquaresAt(2))
	if len(all) != 256 {
		t.Fatalf("ContactsOf all level-2 squares = %d", len(all))
	}
}
