// Package solver defines the black-box substrate solver abstraction at the
// heart of the thesis: a routine which, given voltages on the n substrate
// contacts, returns the n contact currents. The sparsification algorithms
// never see anything else — no kernel, no matrix entries — so any solver
// implementing this interface (finite-difference, eigenfunction-based, or a
// user-supplied one) can be plugged in unmodified.
package solver

import (
	"fmt"
	"sync"

	"subcouple/internal/la"
	"subcouple/internal/obs"
)

// Solver is the black-box contact-voltages-to-contact-currents map.
type Solver interface {
	// N returns the number of contacts.
	N() int
	// Solve returns the contact currents for the given contact voltages.
	Solve(v []float64) ([]float64, error)
}

// IterationReporter is implemented by iterative solvers that track their
// inner iteration counts (used by Tables 2.1 and 2.2).
type IterationReporter interface {
	// AvgIterations returns the mean inner-iteration count per Solve call.
	AvgIterations() float64
}

// Counting wraps a Solver and counts black-box calls, the currency of the
// thesis's solve-reduction factor. Increments are mutex-guarded so a
// Counting may sit below a Parallel adapter; read Solves only when no
// solves are in flight (i.e. after the extraction returns). Set Rec to also
// stream solve counts and batch-size stats into an obs.Recorder.
type Counting struct {
	S      Solver
	Solves int
	Rec    *obs.Recorder

	mu sync.Mutex
}

// NewCounting wraps s.
func NewCounting(s Solver) *Counting { return &Counting{S: s} }

// N implements Solver.
func (c *Counting) N() int { return c.S.N() }

// Solve implements Solver, incrementing the call counter.
func (c *Counting) Solve(v []float64) ([]float64, error) {
	c.add(1)
	c.Rec.Add("solver/solves", 1)
	return c.S.Solve(v)
}

// SolveBatch implements BatchSolver: a batch of k right-hand sides counts
// as k black-box calls regardless of how the wrapped solver executes them.
func (c *Counting) SolveBatch(vs [][]float64) ([][]float64, error) {
	c.recordBatch(len(vs))
	return SolveBatch(c.S, vs)
}

// recordBatch counts a k-solve batch. It is also called by the Parallel
// adapter when it unwraps a Counting to fan the batch out itself, so the
// count stays exact on that path too.
func (c *Counting) recordBatch(k int) {
	c.add(k)
	c.Rec.Add("solver/solves", int64(k))
	c.Rec.Add("solver/batches", 1)
	c.Rec.Observe("solver/batch_size", float64(k))
}

func (c *Counting) add(k int) {
	c.mu.Lock()
	c.Solves += k
	c.mu.Unlock()
}

// SetRecorder implements obs.RecorderSetter, forwarding to the wrapped
// solver so a whole chain is wired with one call.
func (c *Counting) SetRecorder(rec *obs.Recorder) {
	c.Rec = rec
	if rs, ok := c.S.(obs.RecorderSetter); ok {
		rs.SetRecorder(rec)
	}
}

// SetTracer implements obs.TracerSetter by forwarding to the wrapped solver;
// Counting itself emits no spans (the per-solve spans live in the backends).
func (c *Counting) SetTracer(tr *obs.Tracer) {
	if ts, ok := c.S.(obs.TracerSetter); ok {
		ts.SetTracer(tr)
	}
}

// SetWorkers implements WorkerSetter by forwarding to the wrapped solver,
// so a Counting anywhere in a chain is transparent to the worker knob.
func (c *Counting) SetWorkers(w int) {
	if ws, ok := c.S.(WorkerSetter); ok {
		ws.SetWorkers(w)
	}
}

// AvgIterations passes through the wrapped solver's iteration statistics.
func (c *Counting) AvgIterations() float64 {
	if ir, ok := c.S.(IterationReporter); ok {
		return ir.AvgIterations()
	}
	return 0
}

// Reset zeroes the call counter.
func (c *Counting) Reset() {
	c.mu.Lock()
	c.Solves = 0
	c.mu.Unlock()
}

// Dense is a Solver backed by an explicit conductance matrix. It is used in
// tests and to re-drive the sparsification algorithms cheaply once an exact
// G has been extracted for error measurement.
type Dense struct {
	G *la.Dense
}

// NewDense wraps a conductance matrix.
func NewDense(g *la.Dense) *Dense {
	if g.Rows != g.Cols {
		panic("solver: conductance matrix must be square")
	}
	return &Dense{G: g}
}

// N implements Solver.
func (d *Dense) N() int { return d.G.Rows }

// Solve implements Solver.
func (d *Dense) Solve(v []float64) ([]float64, error) {
	if len(v) != d.G.Rows {
		return nil, fmt.Errorf("solver: voltage vector length %d, want %d", len(v), d.G.Rows)
	}
	return d.G.MulVec(v), nil
}

// ExtractDense runs the naive extraction: n black-box calls, one per
// standard basis vector (thesis §1.2), returning the dense G. The calls go
// through SolveBatch in chunks, so wrapping s with Parallel (or passing a
// native BatchSolver) extracts columns concurrently.
func ExtractDense(s Solver) (*la.Dense, error) {
	n := s.N()
	cols := make([]int, n)
	for j := range cols {
		cols[j] = j
	}
	g := la.NewDense(n, n)
	err := extractInto(s, cols, func(j int, col []float64) {
		for i := 0; i < n; i++ {
			g.Set(i, j, col[i])
		}
	})
	if err != nil {
		return nil, err
	}
	return g, nil
}

// ExtractColumns runs the naive extraction for a subset of columns (used for
// the thesis's 10%-sample error measurement on large examples), batched the
// same way as ExtractDense.
func ExtractColumns(s Solver, cols []int) (*la.Dense, error) {
	g := la.NewDense(s.N(), len(cols))
	if err := extractInto(s, cols, g.SetCol); err != nil {
		return nil, err
	}
	return g, nil
}
