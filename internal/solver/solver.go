// Package solver defines the black-box substrate solver abstraction at the
// heart of the thesis: a routine which, given voltages on the n substrate
// contacts, returns the n contact currents. The sparsification algorithms
// never see anything else — no kernel, no matrix entries — so any solver
// implementing this interface (finite-difference, eigenfunction-based, or a
// user-supplied one) can be plugged in unmodified.
package solver

import (
	"fmt"

	"subcouple/internal/la"
)

// Solver is the black-box contact-voltages-to-contact-currents map.
type Solver interface {
	// N returns the number of contacts.
	N() int
	// Solve returns the contact currents for the given contact voltages.
	Solve(v []float64) ([]float64, error)
}

// IterationReporter is implemented by iterative solvers that track their
// inner iteration counts (used by Tables 2.1 and 2.2).
type IterationReporter interface {
	// AvgIterations returns the mean inner-iteration count per Solve call.
	AvgIterations() float64
}

// Counting wraps a Solver and counts black-box calls, the currency of the
// thesis's solve-reduction factor.
type Counting struct {
	S      Solver
	Solves int
}

// NewCounting wraps s.
func NewCounting(s Solver) *Counting { return &Counting{S: s} }

// N implements Solver.
func (c *Counting) N() int { return c.S.N() }

// Solve implements Solver, incrementing the call counter.
func (c *Counting) Solve(v []float64) ([]float64, error) {
	c.Solves++
	return c.S.Solve(v)
}

// Reset zeroes the call counter.
func (c *Counting) Reset() { c.Solves = 0 }

// Dense is a Solver backed by an explicit conductance matrix. It is used in
// tests and to re-drive the sparsification algorithms cheaply once an exact
// G has been extracted for error measurement.
type Dense struct {
	G *la.Dense
}

// NewDense wraps a conductance matrix.
func NewDense(g *la.Dense) *Dense {
	if g.Rows != g.Cols {
		panic("solver: conductance matrix must be square")
	}
	return &Dense{G: g}
}

// N implements Solver.
func (d *Dense) N() int { return d.G.Rows }

// Solve implements Solver.
func (d *Dense) Solve(v []float64) ([]float64, error) {
	if len(v) != d.G.Rows {
		return nil, fmt.Errorf("solver: voltage vector length %d, want %d", len(v), d.G.Rows)
	}
	return d.G.MulVec(v), nil
}

// ExtractDense runs the naive extraction: n black-box calls, one per
// standard basis vector (thesis §1.2), returning the dense G.
func ExtractDense(s Solver) (*la.Dense, error) {
	n := s.N()
	g := la.NewDense(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		col, err := s.Solve(e)
		if err != nil {
			return nil, fmt.Errorf("solver: extracting column %d: %w", j, err)
		}
		e[j] = 0
		for i := 0; i < n; i++ {
			g.Set(i, j, col[i])
		}
	}
	return g, nil
}

// ExtractColumns runs the naive extraction for a subset of columns (used for
// the thesis's 10%-sample error measurement on large examples).
func ExtractColumns(s Solver, cols []int) (*la.Dense, error) {
	n := s.N()
	g := la.NewDense(n, len(cols))
	e := make([]float64, n)
	for ji, j := range cols {
		if j < 0 || j >= n {
			return nil, fmt.Errorf("solver: column %d out of range", j)
		}
		e[j] = 1
		col, err := s.Solve(e)
		if err != nil {
			return nil, fmt.Errorf("solver: extracting column %d: %w", j, err)
		}
		e[j] = 0
		g.SetCol(ji, col)
	}
	return g, nil
}
