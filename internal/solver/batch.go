package solver

import (
	"fmt"

	"subcouple/internal/obs"
	"subcouple/internal/par"
)

// BatchSolver is an optional Solver extension for backends that can answer
// several independent right-hand sides at once (natively batched kernels,
// or anything wrapped by Parallel). The responses must be exactly what n
// sequential Solve calls would return, in the same order.
type BatchSolver interface {
	Solver
	// SolveBatch returns one response per voltage vector in vs.
	SolveBatch(vs [][]float64) ([][]float64, error)
}

// SolveBatch answers every right-hand side in vs through s, using the native
// SolveBatch when s implements BatchSolver and a sequential loop otherwise.
// This is the entry point the sparsification algorithms use for every group
// of independent solves.
func SolveBatch(s Solver, vs [][]float64) ([][]float64, error) {
	if bs, ok := s.(BatchSolver); ok {
		return bs.SolveBatch(vs)
	}
	out := make([][]float64, len(vs))
	for i, v := range vs {
		r, err := s.Solve(v)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// WorkerSetter is implemented by solvers whose native SolveBatch runs on a
// configurable pool (fd, bem). Parallel propagates its worker count through
// it, so one knob controls the whole chain.
type WorkerSetter interface {
	SetWorkers(workers int)
}

// parallelSolver fans batched solves across a worker pool. See Parallel.
type parallelSolver struct {
	s       Solver
	workers int
	rec     *obs.Recorder
	tr      *obs.Tracer
}

// Parallel adapts s into a BatchSolver whose SolveBatch runs independent
// solves concurrently on workers goroutines (workers <= 0 selects
// runtime.NumCPU()). Responses are written into slots indexed by
// right-hand-side position, so the result is bitwise-identical to the
// serial loop for any worker count. If s already implements BatchSolver its
// native batching is preferred — except for *Counting, which is counted and
// then unwrapped so its sequential fallback can never serialize the batch.
// Wrap only solvers whose Solve is safe to call concurrently.
func Parallel(s Solver, workers int) BatchSolver {
	if p, ok := s.(*parallelSolver); ok {
		s = p.s // re-wrapping just replaces the worker count
	}
	if ws, ok := s.(WorkerSetter); ok {
		ws.SetWorkers(workers)
	}
	return &parallelSolver{s: s, workers: par.Workers(workers)}
}

// N implements Solver.
func (p *parallelSolver) N() int { return p.s.N() }

// Solve implements Solver by passing through to the wrapped solver.
func (p *parallelSolver) Solve(v []float64) ([]float64, error) { return p.s.Solve(v) }

// AvgIterations passes through the wrapped solver's iteration statistics.
func (p *parallelSolver) AvgIterations() float64 {
	if ir, ok := p.s.(IterationReporter); ok {
		return ir.AvgIterations()
	}
	return 0
}

// SetRecorder implements obs.RecorderSetter: worker-utilization stats land
// in rec, and the recorder is forwarded down the chain so instrumented
// backends (fd, bem, Counting) are wired with one call.
func (p *parallelSolver) SetRecorder(rec *obs.Recorder) {
	p.rec = rec
	if rs, ok := p.s.(obs.RecorderSetter); ok {
		rs.SetRecorder(rec)
	}
}

// SetTracer implements obs.TracerSetter, forwarding down the chain like
// SetRecorder. The adapter's own spans cover the fallback fan-out path;
// native BatchSolver backends (fd, bem) emit their own batch spans.
func (p *parallelSolver) SetTracer(tr *obs.Tracer) {
	p.tr = tr
	if ts, ok := p.s.(obs.TracerSetter); ok {
		ts.SetTracer(tr)
	}
}

// SolveBatch implements BatchSolver. A wrapped *Counting is unwrapped here
// — counted, then bypassed — so the fan-out always happens below the
// counter. Without this, Counting's own SolveBatch (a sequential Solve loop
// when the innermost solver is a plain Solver) would swallow the batch and
// silently serialize it.
func (p *parallelSolver) SolveBatch(vs [][]float64) ([][]float64, error) {
	s := p.s
	for {
		if c, ok := s.(*Counting); ok {
			c.recordBatch(len(vs))
			s = c.S
			continue
		}
		break
	}
	busy := p.workers
	if len(vs) < busy {
		busy = len(vs)
	}
	p.rec.Observe("solver/busy_workers", float64(busy))
	if bs, ok := s.(BatchSolver); ok {
		return bs.SolveBatch(vs)
	}
	sp := p.tr.Begin("solver/parallel_batch").Arg("batch_size", len(vs))
	out := make([][]float64, len(vs))
	err := par.DoWorkerErr(p.workers, len(vs), func(worker, i int) error {
		ssp := sp.ChildOn(worker+1, "solver/solve").Arg("rhs", i)
		r, err := s.Solve(vs[i])
		ssp.End()
		out[i] = r
		return err
	})
	sp.End()
	if err != nil {
		return nil, err
	}
	return out, nil
}

// extractBatch is the number of columns materialized per SolveBatch call in
// the naive extractors: large enough to keep a pool of workers busy, small
// enough that the in-flight right-hand sides stay O(extractBatch·n) even
// for the 10k-contact examples.
const extractBatch = 128

// extractInto drives the naive column extraction through SolveBatch in
// fixed-size chunks, storing each response via set(ji, col).
func extractInto(s Solver, cols []int, set func(ji int, col []float64)) error {
	n := s.N()
	for base := 0; base < len(cols); base += extractBatch {
		end := base + extractBatch
		if end > len(cols) {
			end = len(cols)
		}
		vs := make([][]float64, end-base)
		for k := range vs {
			j := cols[base+k]
			if j < 0 || j >= n {
				return fmt.Errorf("solver: column %d out of range", j)
			}
			e := make([]float64, n)
			e[j] = 1
			vs[k] = e
		}
		resp, err := SolveBatch(s, vs)
		if err != nil {
			return fmt.Errorf("solver: extracting columns %v: %w", cols[base:end], err)
		}
		for k, col := range resp {
			set(base+k, col)
		}
	}
	return nil
}
