package solver

import (
	"errors"
	"testing"
)

// stubSolver returns a copy of the input scaled by 2 and errors on a
// designated index (marked by v[0]).
type stubSolver struct {
	n       int
	failOn  float64
	batches int // incremented when SolveBatch-as-BatchSolver is used
}

func (s *stubSolver) N() int { return s.n }

func (s *stubSolver) Solve(v []float64) ([]float64, error) {
	if s.failOn != 0 && v[0] == s.failOn {
		return nil, errors.New("stub failure")
	}
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = 2 * x
	}
	return out, nil
}

// batchStub additionally implements BatchSolver and WorkerSetter.
type batchStub struct {
	stubSolver
	workers int
}

func (s *batchStub) SetWorkers(w int) { s.workers = w }

func (s *batchStub) SolveBatch(vs [][]float64) ([][]float64, error) {
	s.batches++
	out := make([][]float64, len(vs))
	for i, v := range vs {
		r, err := s.Solve(v)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

func batchOf(n, k int) [][]float64 {
	vs := make([][]float64, k)
	for i := range vs {
		vs[i] = make([]float64, n)
		vs[i][i%n] = float64(i + 1)
	}
	return vs
}

func TestParallelSolveBatchMatchesSerial(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := Parallel(&stubSolver{n: 4}, workers)
		vs := batchOf(4, 11)
		got, err := p.SolveBatch(vs)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range vs {
			for j := range v {
				if got[i][j] != 2*v[j] {
					t.Fatalf("workers=%d: batch slot %d wrong", workers, i)
				}
			}
		}
	}
}

func TestParallelSolveBatchError(t *testing.T) {
	p := Parallel(&stubSolver{n: 4, failOn: 5}, 4)
	if _, err := p.SolveBatch(batchOf(4, 11)); err == nil {
		t.Fatalf("expected the failing solve's error")
	}
}

func TestParallelPrefersNativeBatchAndPropagatesWorkers(t *testing.T) {
	b := &batchStub{stubSolver: stubSolver{n: 4}}
	p := Parallel(b, 3)
	if b.workers != 3 {
		t.Fatalf("SetWorkers not called: workers = %d", b.workers)
	}
	if _, err := p.SolveBatch(batchOf(4, 5)); err != nil {
		t.Fatal(err)
	}
	if b.batches != 1 {
		t.Fatalf("native SolveBatch used %d times, want 1", b.batches)
	}
}

func TestParallelRewrapReplacesWorkerCount(t *testing.T) {
	inner := &stubSolver{n: 2}
	p := Parallel(Parallel(inner, 8), 1).(*parallelSolver)
	if p.s != Solver(inner) {
		t.Fatalf("re-wrapping nested the adapters instead of replacing")
	}
	if p.workers != 1 {
		t.Fatalf("workers = %d, want 1", p.workers)
	}
}

func TestCountingSolveBatch(t *testing.T) {
	c := NewCounting(Parallel(&stubSolver{n: 3}, 2))
	if _, err := c.SolveBatch(batchOf(3, 7)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve([]float64{1, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if c.Solves != 8 {
		t.Fatalf("Solves = %d, want 8", c.Solves)
	}
}

func TestPackageSolveBatchFallsBackToLoop(t *testing.T) {
	s := &stubSolver{n: 3}
	got, err := SolveBatch(s, batchOf(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("got %d responses", len(got))
	}
	s.failOn = 4
	if _, err := SolveBatch(s, batchOf(3, 4)); err == nil {
		t.Fatalf("expected error from the failing solve")
	}
}

func TestExtractColumnsOutOfRange(t *testing.T) {
	s := &stubSolver{n: 3}
	if _, err := ExtractColumns(s, []int{0, 3}); err == nil {
		t.Fatalf("expected out-of-range error")
	}
	if _, err := ExtractColumns(s, []int{-1}); err == nil {
		t.Fatalf("expected negative-index error")
	}
}
