package solver

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"subcouple/internal/obs"
)

// stubSolver returns a copy of the input scaled by 2 and errors on a
// designated index (marked by v[0]).
type stubSolver struct {
	n       int
	failOn  float64
	batches int // incremented when SolveBatch-as-BatchSolver is used
}

func (s *stubSolver) N() int { return s.n }

func (s *stubSolver) Solve(v []float64) ([]float64, error) {
	if s.failOn != 0 && v[0] == s.failOn {
		return nil, errors.New("stub failure")
	}
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = 2 * x
	}
	return out, nil
}

// batchStub additionally implements BatchSolver and WorkerSetter.
type batchStub struct {
	stubSolver
	workers int
}

func (s *batchStub) SetWorkers(w int) { s.workers = w }

func (s *batchStub) SolveBatch(vs [][]float64) ([][]float64, error) {
	s.batches++
	out := make([][]float64, len(vs))
	for i, v := range vs {
		r, err := s.Solve(v)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

func batchOf(n, k int) [][]float64 {
	vs := make([][]float64, k)
	for i := range vs {
		vs[i] = make([]float64, n)
		vs[i][i%n] = float64(i + 1)
	}
	return vs
}

func TestParallelSolveBatchMatchesSerial(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := Parallel(&stubSolver{n: 4}, workers)
		vs := batchOf(4, 11)
		got, err := p.SolveBatch(vs)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range vs {
			for j := range v {
				if got[i][j] != 2*v[j] {
					t.Fatalf("workers=%d: batch slot %d wrong", workers, i)
				}
			}
		}
	}
}

func TestParallelSolveBatchError(t *testing.T) {
	p := Parallel(&stubSolver{n: 4, failOn: 5}, 4)
	if _, err := p.SolveBatch(batchOf(4, 11)); err == nil {
		t.Fatalf("expected the failing solve's error")
	}
}

func TestParallelPrefersNativeBatchAndPropagatesWorkers(t *testing.T) {
	b := &batchStub{stubSolver: stubSolver{n: 4}}
	p := Parallel(b, 3)
	if b.workers != 3 {
		t.Fatalf("SetWorkers not called: workers = %d", b.workers)
	}
	if _, err := p.SolveBatch(batchOf(4, 5)); err != nil {
		t.Fatal(err)
	}
	if b.batches != 1 {
		t.Fatalf("native SolveBatch used %d times, want 1", b.batches)
	}
}

func TestParallelRewrapReplacesWorkerCount(t *testing.T) {
	inner := &stubSolver{n: 2}
	p := Parallel(Parallel(inner, 8), 1).(*parallelSolver)
	if p.s != Solver(inner) {
		t.Fatalf("re-wrapping nested the adapters instead of replacing")
	}
	if p.workers != 1 {
		t.Fatalf("workers = %d, want 1", p.workers)
	}
}

func TestCountingSolveBatch(t *testing.T) {
	c := NewCounting(Parallel(&stubSolver{n: 3}, 2))
	if _, err := c.SolveBatch(batchOf(3, 7)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve([]float64{1, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if c.Solves != 8 {
		t.Fatalf("Solves = %d, want 8", c.Solves)
	}
}

// rendezvousSolver is a plain Solver (no BatchSolver) whose Solve blocks
// until `need` calls are in flight simultaneously. A sequentialized batch
// never reaches the rendezvous and times out instead, so completing at all
// proves concurrent execution — even on GOMAXPROCS=1, where the blocked
// goroutines simply yield.
type rendezvousSolver struct {
	n       int
	need    int32
	arrived atomic.Int32
	release chan struct{}
}

func (s *rendezvousSolver) N() int { return s.n }

func (s *rendezvousSolver) Solve(v []float64) ([]float64, error) {
	if s.arrived.Add(1) == s.need {
		close(s.release)
	}
	select {
	case <-s.release:
	case <-time.After(5 * time.Second):
		return nil, errors.New("rendezvous timeout: batch ran sequentially")
	}
	out := make([]float64, len(v))
	copy(out, v)
	return out, nil
}

func TestParallelCountingPlainSolverRunsConcurrently(t *testing.T) {
	const k = 4
	inner := &rendezvousSolver{n: 3, need: k, release: make(chan struct{})}
	c := NewCounting(inner)
	p := Parallel(c, k)
	got, err := p.SolveBatch(batchOf(3, k))
	if err != nil {
		t.Fatalf("batch did not run concurrently: %v", err)
	}
	if len(got) != k {
		t.Fatalf("got %d responses, want %d", len(got), k)
	}
	for i, v := range batchOf(3, k) {
		for j := range v {
			if got[i][j] != v[j] {
				t.Fatalf("slot %d corrupted", i)
			}
		}
	}
	if c.Solves != k {
		t.Fatalf("Solves = %d, want %d (unwrapping lost the count)", c.Solves, k)
	}
}

func TestParallelCountingRecordsBatchStats(t *testing.T) {
	rec := obs.NewRecorder()
	c := NewCounting(&stubSolver{n: 3})
	p := Parallel(c, 2)
	p.(interface{ SetRecorder(*obs.Recorder) }).SetRecorder(rec)
	if _, err := p.SolveBatch(batchOf(3, 5)); err != nil {
		t.Fatal(err)
	}
	s := rec.Snapshot()
	if s.Counters["solver/solves"] != 5 || s.Counters["solver/batches"] != 1 {
		t.Fatalf("counters wrong: %+v", s.Counters)
	}
	if h := s.Histograms["solver/batch_size"]; h.Count != 1 || h.Max != 5 {
		t.Fatalf("batch_size hist wrong: %+v", h)
	}
	if h := s.Histograms["solver/busy_workers"]; h.Count != 1 || h.Max != 2 {
		t.Fatalf("busy_workers hist wrong: %+v", h)
	}
}

func TestPackageSolveBatchFallsBackToLoop(t *testing.T) {
	s := &stubSolver{n: 3}
	got, err := SolveBatch(s, batchOf(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("got %d responses", len(got))
	}
	s.failOn = 4
	if _, err := SolveBatch(s, batchOf(3, 4)); err == nil {
		t.Fatalf("expected error from the failing solve")
	}
}

func TestExtractColumnsOutOfRange(t *testing.T) {
	s := &stubSolver{n: 3}
	if _, err := ExtractColumns(s, []int{0, 3}); err == nil {
		t.Fatalf("expected out-of-range error")
	}
	if _, err := ExtractColumns(s, []int{-1}); err == nil {
		t.Fatalf("expected negative-index error")
	}
}
