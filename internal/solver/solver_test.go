package solver

import (
	"math"
	"testing"

	"subcouple/internal/la"
)

func testG() *la.Dense {
	return la.NewDenseFrom(3, 3, []float64{
		2, -0.5, -0.3,
		-0.5, 1.8, -0.4,
		-0.3, -0.4, 2.2,
	})
}

func TestDenseSolver(t *testing.T) {
	g := testG()
	s := NewDense(g)
	if s.N() != 3 {
		t.Fatalf("N = %d", s.N())
	}
	out, err := s.Solve([]float64{1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if out[i] != g.At(i, 0) {
			t.Fatalf("Solve(e0)[%d] = %g", i, out[i])
		}
	}
	if _, err := s.Solve([]float64{1, 2}); err == nil {
		t.Fatalf("expected length error")
	}
}

func TestCounting(t *testing.T) {
	c := NewCounting(NewDense(testG()))
	for i := 0; i < 5; i++ {
		if _, err := c.Solve([]float64{1, 1, 1}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Solves != 5 {
		t.Fatalf("Solves = %d", c.Solves)
	}
	c.Reset()
	if c.Solves != 0 {
		t.Fatalf("Reset failed")
	}
}

func TestExtractDense(t *testing.T) {
	g := testG()
	c := NewCounting(NewDense(g))
	got, err := ExtractDense(c)
	if err != nil {
		t.Fatal(err)
	}
	if c.Solves != 3 {
		t.Fatalf("naive extraction used %d solves, want n=3", c.Solves)
	}
	for i := range g.Data {
		if math.Abs(got.Data[i]-g.Data[i]) > 1e-15 {
			t.Fatalf("ExtractDense mismatch at %d", i)
		}
	}
}

func TestExtractColumns(t *testing.T) {
	g := testG()
	s := NewDense(g)
	got, err := ExtractColumns(s, []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != 3 || got.Cols != 2 {
		t.Fatalf("shape %dx%d", got.Rows, got.Cols)
	}
	for i := 0; i < 3; i++ {
		if got.At(i, 0) != g.At(i, 2) || got.At(i, 1) != g.At(i, 0) {
			t.Fatalf("column extraction wrong at row %d", i)
		}
	}
	if _, err := ExtractColumns(s, []int{7}); err == nil {
		t.Fatalf("expected range error")
	}
}
