package wavelet

import (
	"math"
	"testing"

	"subcouple/internal/geom"
	"subcouple/internal/quadtree"
)

func TestFactoredMatchesExplicitQ(t *testing.T) {
	for _, tc := range []struct {
		name string
		b    func(t *testing.T) *Basis
	}{
		{"regular-p2", func(t *testing.T) *Basis { b, _ := regularBasis(t, 2); return b }},
		{"regular-p0", func(t *testing.T) *Basis { b, _ := regularBasis(t, 0); return b }},
		{"irregular", func(t *testing.T) *Basis {
			layout := geom.IrregularSameSize(64, 64, 16, 16, 2, 0.5, 3)
			tree, err := quadtree.Build(layout, 4)
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewBasis(layout, tree, 2)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.b(t)
			f, err := b.Factored()
			if err != nil {
				t.Fatal(err)
			}
			n := b.N()
			e := make([]float64, n)
			for k := 0; k < n; k++ {
				e[k] = 1
				got := f.Apply(e)
				e[k] = 0
				want := b.ColVector(k)
				for i := range got {
					if math.Abs(got[i]-want[i]) > 1e-10 {
						t.Fatalf("column %d differs at row %d: %g vs %g", k, i, got[i], want[i])
					}
				}
			}
		})
	}
}

func TestFactoredTransposeRoundTrip(t *testing.T) {
	b, _ := extractBasis(t)
	f, err := b.Factored()
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, b.N())
	for i := range x {
		x[i] = math.Sin(float64(i) * 0.7)
	}
	// Qᵀ·Q·x = x (orthogonality through the factored chain).
	y := f.ApplyT(f.Apply(x))
	for i := range x {
		if math.Abs(y[i]-x[i]) > 1e-10 {
			t.Fatalf("round trip differs at %d: %g vs %g", i, y[i], x[i])
		}
	}
}

func TestFactoredStorageIsLinear(t *testing.T) {
	// Thesis §3.4.3 (eq. 3.18): the factored form stores O(n) entries while
	// the explicit Q has O(n log n) nonzeros. Check the per-contact storage
	// stays bounded as n quadruples, and that the factored form beats the
	// explicit Q on the deeper example.
	sizes := []struct {
		nx, lev int
	}{{8, 3}, {16, 4}, {32, 5}}
	var perContact []float64
	var lastFactored, lastExplicit int
	for _, sz := range sizes {
		layout := geom.RegularGrid(float64(sz.nx*4), float64(sz.nx*4), sz.nx, sz.nx, 2)
		tree, err := quadtree.Build(layout, sz.lev)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewBasis(layout, tree, 2)
		if err != nil {
			t.Fatal(err)
		}
		f, err := b.Factored()
		if err != nil {
			t.Fatal(err)
		}
		perContact = append(perContact, float64(f.NNZ())/float64(b.N()))
		lastFactored = f.NNZ()
		lastExplicit = b.Q().NNZ()
	}
	for i, pc := range perContact {
		if pc > 60 {
			t.Fatalf("size %d: %.1f stored entries per contact, not O(n)-like", i, pc)
		}
	}
	// Growth between consecutive sizes must be bounded (no log factor blowup).
	if perContact[2] > 1.5*perContact[1] {
		t.Fatalf("per-contact storage still growing fast: %v", perContact)
	}
	if lastFactored >= lastExplicit {
		t.Fatalf("factored (%d) not smaller than explicit Q (%d)", lastFactored, lastExplicit)
	}
}
