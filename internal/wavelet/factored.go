package wavelet

import (
	"fmt"

	"subcouple/internal/la"
	"subcouple/internal/model"
)

// FactoredQ is the O(n)-storage representation of the wavelet basis from
// thesis §3.4.3: instead of the explicit sparse Q (O(n log n) nonzeros),
// the change of basis is kept as the product
//
//	Q = Q⁽ᴸ⁾ · Q⁽ᴸ⁻¹⁾ · … · Q⁽⁰⁾,
//
// where Q⁽ᴸ⁾ holds the finest-level per-square bases [V_s W_s] over the
// square's contacts and each coarser Q⁽ⁱ⁾ holds the small recombination
// blocks ( T_p R_p ); everything else is an implicit identity. Total
// storage is O(n) and applying Q or Qᵀ costs O(n), versus O(n log n) for
// the explicit sparse Q.
//
// Coordinates: the chain input is the Basis's native coefficient indexing
// (positions in Basis.Cols); the chain output is contact space. At the
// stage between Q⁽ˡ⁻¹⁾ and Q⁽ˡ⁾ the live coordinates are the native
// positions of all W columns at levels >= l plus "V slots" holding the
// level-l V coefficients; the V slots are drawn from the complement so the
// two sets never collide.
type FactoredQ struct {
	n      int
	levels []*factorLevel // levels[l] = Q⁽ˡ⁾, l = 0 … L
}

type factorLevel struct {
	blocks []factorBlock
	// passThrough lists coordinates copied unchanged by this factor.
	passThrough []int
}

// factorBlock is one dense block: out[outIdx] = m · in[inIdx].
type factorBlock struct {
	m      *la.Dense
	inIdx  []int
	outIdx []int
}

// Apply computes Q·x, mapping native coefficients to contact space.
func (f *FactoredQ) Apply(x []float64) []float64 {
	if len(x) != f.n {
		panic("wavelet: FactoredQ.Apply dimension mismatch")
	}
	cur := append([]float64(nil), x...)
	for _, lv := range f.levels { // Q⁽⁰⁾ first
		cur = lv.forward(cur)
	}
	return cur
}

// ApplyT computes Qᵀ·x, mapping contact space to native coefficients.
func (f *FactoredQ) ApplyT(x []float64) []float64 {
	if len(x) != f.n {
		panic("wavelet: FactoredQ.ApplyT dimension mismatch")
	}
	cur := append([]float64(nil), x...)
	for i := len(f.levels) - 1; i >= 0; i-- {
		cur = f.levels[i].backward(cur)
	}
	return cur
}

func (lv *factorLevel) forward(in []float64) []float64 {
	out := make([]float64, len(in))
	for _, i := range lv.passThrough {
		out[i] = in[i]
	}
	for _, blk := range lv.blocks {
		for r, oi := range blk.outIdx {
			var s float64
			row := blk.m.Row(r)
			for c, ii := range blk.inIdx {
				s += row[c] * in[ii]
			}
			out[oi] = s
		}
	}
	return out
}

func (lv *factorLevel) backward(in []float64) []float64 {
	out := make([]float64, len(in))
	for _, i := range lv.passThrough {
		out[i] = in[i]
	}
	for _, blk := range lv.blocks {
		for c, ii := range blk.inIdx {
			var s float64
			for r, oi := range blk.outIdx {
				s += blk.m.At(r, c) * in[oi]
			}
			out[ii] = s
		}
	}
	return out
}

// NNZ returns the stored entry count across all factors — the O(n) storage
// promised by the thesis §3.4.3 analysis (eq. 3.18).
func (f *FactoredQ) NNZ() int {
	total := 0
	for _, lv := range f.levels {
		for _, blk := range lv.blocks {
			total += blk.m.Rows * blk.m.Cols
		}
	}
	return total
}

// Factored builds the factored representation. The result satisfies
// Factored().Apply(e_k) == ColVector(k) for every native column k.
func (b *Basis) Factored() (*FactoredQ, error) {
	if b.facFinest == nil {
		return nil, fmt.Errorf("wavelet: factored construction data missing")
	}
	n := b.N()
	tree := b.Tree
	L := tree.MaxLevel
	f := &FactoredQ{n: n}

	// Native positions of W columns per level.
	wAtOrAbove := make([]map[int]bool, L+2) // wAtOrAbove[l] = W native positions at levels >= l
	wAtOrAbove[L+1] = map[int]bool{}
	for lev := L; lev >= 0; lev-- {
		m := map[int]bool{}
		for k := range wAtOrAbove[lev+1] {
			m[k] = true
		}
		for _, s := range tree.SquaresAt(lev) {
			for _, c := range b.wCols[lev][s.ID] {
				m[c] = true
			}
		}
		wAtOrAbove[lev] = m
	}

	// V slots per level: level 0 uses the native root-V positions; deeper
	// levels take the complement of wAtOrAbove[lev] in ascending order,
	// handed out square by square.
	vSlots := make([]map[int][]int, L+1) // [level][squareID] -> slots
	vSlots[0] = map[int][]int{0: append([]int(nil), b.rootV...)}
	for lev := 1; lev <= L; lev++ {
		var free []int
		for i := 0; i < n; i++ {
			if !wAtOrAbove[lev][i] {
				free = append(free, i)
			}
		}
		m := map[int][]int{}
		pos := 0
		for _, s := range tree.SquaresAt(lev) {
			vc := b.facVCols[levelKey(lev, s.ID)]
			if vc == 0 {
				continue
			}
			m[s.ID] = free[pos : pos+vc]
			pos += vc
		}
		if pos != len(free) {
			return nil, fmt.Errorf("wavelet: V slot accounting off at level %d: %d vs %d", lev, pos, len(free))
		}
		vSlots[lev] = m
	}

	// Coarse factors Q⁽ˡ⁾ for l < L: per square, child V coefficients =
	// [T R]·[V_s coeffs ; W_s coeffs].
	for lev := 0; lev < L; lev++ {
		lv := &factorLevel{}
		consumed := map[int]bool{}
		for _, s := range tree.SquaresAt(lev) {
			blkm := b.facCoarse[levelKey(lev, s.ID)]
			if blkm == nil {
				continue
			}
			inIdx := append([]int(nil), vSlots[lev][s.ID]...)
			inIdx = append(inIdx, b.wCols[lev][s.ID]...)
			var outIdx []int
			for _, c := range tree.Children(s) {
				outIdx = append(outIdx, vSlots[lev+1][c.ID]...)
			}
			if len(inIdx) != blkm.Cols || len(outIdx) != blkm.Rows {
				return nil, fmt.Errorf("wavelet: factor block shape mismatch at level %d", lev)
			}
			for _, i := range inIdx {
				consumed[i] = true
			}
			for _, o := range outIdx {
				consumed[o] = true
			}
			lv.blocks = append(lv.blocks, factorBlock{m: blkm, inIdx: inIdx, outIdx: outIdx})
		}
		for i := 0; i < n; i++ {
			if !consumed[i] && wAtOrAbove[lev+1][i] {
				lv.passThrough = append(lv.passThrough, i)
			}
		}
		f.levels = append(f.levels, lv)
	}

	// Finest factor Q⁽ᴸ⁾: contacts = [V_s W_s]·coeffs per square.
	lvf := &factorLevel{}
	for _, s := range tree.SquaresAt(L) {
		blkm := b.facFinest[s.ID]
		if blkm == nil {
			continue
		}
		inIdx := append([]int(nil), vSlots[L][s.ID]...)
		inIdx = append(inIdx, b.wCols[L][s.ID]...)
		outIdx := append([]int(nil), s.Contacts...)
		if len(inIdx) != blkm.Cols || len(outIdx) != blkm.Rows {
			return nil, fmt.Errorf("wavelet: finest factor block shape mismatch")
		}
		lvf.blocks = append(lvf.blocks, factorBlock{m: blkm, inIdx: inIdx, outIdx: outIdx})
	}
	f.levels = append(f.levels, lvf)
	return f, nil
}

func levelKey(level, id int) int { return level<<24 | id }

// ExportLevels converts the factored chain into the serializable form of
// internal/model: each block's dense matrix is flattened row-major and the
// in/out coordinate lists are copied, so a model.Engine replays exactly the
// arithmetic of Apply/ApplyT.
func (f *FactoredQ) ExportLevels() []model.Level {
	out := make([]model.Level, len(f.levels))
	for li, lv := range f.levels {
		ml := model.Level{PassThrough: append([]int(nil), lv.passThrough...)}
		for _, blk := range lv.blocks {
			ml.Blocks = append(ml.Blocks, model.Block{
				Rows: blk.m.Rows,
				Cols: blk.m.Cols,
				Data: append([]float64(nil), blk.m.Data...),
				In:   append([]int(nil), blk.inIdx...),
				Out:  append([]int(nil), blk.outIdx...),
			})
		}
		out[li] = ml
	}
	return out
}
