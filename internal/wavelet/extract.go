package wavelet

import (
	"fmt"
	"sort"

	"subcouple/internal/la"
	"subcouple/internal/quadtree"
	"subcouple/internal/solver"
	"subcouple/internal/sparse"
)

// entryMap accumulates Gw entries with set (not sum) semantics.
type entryMap struct {
	n int
	m map[int64]float64
}

func newEntryMap(n int) *entryMap { return &entryMap{n: n, m: make(map[int64]float64)} }

func (e *entryMap) put(i, j int, v float64) {
	e.m[int64(i)*int64(e.n)+int64(j)] = v
	e.m[int64(j)*int64(e.n)+int64(i)] = v
}

func (e *entryMap) matrix() *sparse.Matrix {
	ts := make([]sparse.Triplet, 0, len(e.m))
	for k, v := range e.m {
		ts = append(ts, sparse.Triplet{Row: int(k / int64(e.n)), Col: int(k % int64(e.n)), Val: v})
	}
	return sparse.FromTriplets(e.n, e.n, ts)
}

// ExtractCombined extracts Gws = (QᵀGQ restricted to the §3.5 locality
// pattern) using the combine-solves technique: root-V and level-0/1 W
// columns are solved directly; on each level >= 2 the W columns of squares
// in the same (i mod 3, j mod 3) class are summed into one black-box call
// (eq. 3.24) and the responses separated by locality. The number of solves
// is O(log n) for reasonably regular layouts.
func (b *Basis) ExtractCombined(s solver.Solver) (*sparse.Matrix, error) {
	if s.N() != b.N() {
		return nil, fmt.Errorf("wavelet: solver has %d contacts, basis %d", s.N(), b.N())
	}
	defer b.rec.Phase("wavelet/extract")()
	xsp := b.tr.Begin("wavelet/extract_combined").Arg("n", b.N())
	defer xsp.End()
	em := newEntryMap(b.N())

	// Every black-box call of the algorithm is independent of every other,
	// so the whole schedule — direct solves plus all combine-solves on all
	// levels — is assembled first and issued as one SolveBatch. A Parallel
	// (or natively batched) solver then answers them concurrently. Entry
	// writes into em stay serial and in schedule order, so the result is
	// bitwise-independent of the worker count.
	var rhs [][]float64

	// Direct solves: root V columns and W columns on levels 0 and 1
	// interact with everything.
	var direct []int
	direct = append(direct, b.rootV...)
	for lev := 0; lev <= 1 && lev <= b.Tree.MaxLevel; lev++ {
		for _, s := range b.Tree.SquaresAt(lev) {
			direct = append(direct, b.wCols[lev][s.ID]...)
		}
	}
	for _, cj := range direct {
		rhs = append(rhs, b.ColVector(cj))
	}

	// Combine-solves on levels 2..L (eq. 3.24): squares of a (i mod 3,
	// j mod 3) class are far enough apart to share one solve. Classes are
	// visited in sorted key order — Go map iteration is randomized, and the
	// set semantics of entryMap make the overlap entries of symmetric pairs
	// order-sensitive, so a fixed order is required for reproducibility.
	type combined struct {
		lev, m       int
		contributors []*quadtree.Square
	}
	var combs []combined
	for lev := 2; lev <= b.Tree.MaxLevel; lev++ {
		classes := make(map[[2]int][]*quadtree.Square)
		for _, sq := range b.Tree.SquaresAt(lev) {
			if len(b.wCols[lev][sq.ID]) == 0 {
				continue
			}
			a, c := quadtree.Mod3Class(sq)
			classes[[2]int{a, c}] = append(classes[[2]int{a, c}], sq)
		}
		keys := make([][2]int, 0, len(classes))
		for k := range classes {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(x, y int) bool {
			if keys[x][0] != keys[y][0] {
				return keys[x][0] < keys[y][0]
			}
			return keys[x][1] < keys[y][1]
		})
		for _, key := range keys {
			members := classes[key]
			csp := b.tr.Begin("wavelet/class").
				Arg("level", lev).Arg("class", fmt.Sprintf("%d,%d", key[0], key[1])).
				Arg("members", len(members))
			maxm := 0
			for _, sq := range members {
				if n := len(b.wCols[lev][sq.ID]); n > maxm {
					maxm = n
				}
			}
			for m := 0; m < maxm; m++ {
				theta := make([]float64, b.N())
				var contributors []*quadtree.Square
				for _, sq := range members {
					cols := b.wCols[lev][sq.ID]
					if m < len(cols) {
						b.colAdd(cols[m], 1, theta)
						contributors = append(contributors, sq)
					}
				}
				if len(contributors) == 0 {
					continue
				}
				rhs = append(rhs, theta)
				combs = append(combs, combined{lev: lev, m: m, contributors: contributors})
			}
			csp.Arg("solves", maxm).End()
		}
	}

	b.rec.Add("wavelet/solves_direct", int64(len(direct)))
	b.rec.Add("wavelet/solves_combined", int64(len(combs)))
	xsp.Arg("solves_direct", len(direct)).Arg("solves_combined", len(combs))
	ys, err := solver.SolveBatch(s, rhs)
	if err != nil {
		return nil, err
	}
	ssp := xsp.Child("wavelet/scatter")
	for k, cj := range direct {
		y := ys[k]
		for ci := range b.Cols {
			em.put(ci, cj, b.colDot(ci, y))
		}
	}
	for k, cb := range combs {
		y := ys[len(direct)+k]
		for _, sq := range cb.contributors {
			cj := b.wCols[cb.lev][sq.ID][cb.m]
			for _, ti := range b.targetColumns(sq, cb.lev) {
				em.put(ti, cj, b.colDot(ti, y))
			}
		}
	}
	ssp.End()
	return em.matrix(), nil
}

// ExtractDirect extracts the same locality-restricted Gws but with one
// black-box solve per basis column (n solves): the combine-solves ablation.
// Kept entries are exact inner products qᵢᵀ·G·qⱼ.
func (b *Basis) ExtractDirect(s solver.Solver) (*sparse.Matrix, error) {
	if s.N() != b.N() {
		return nil, fmt.Errorf("wavelet: solver has %d contacts, basis %d", s.N(), b.N())
	}
	defer b.rec.Phase("wavelet/extract")()
	n := b.N()
	b.rec.Add("wavelet/solves_direct", int64(n))
	resp := make([][]float64, n)
	// Chunked batches keep the in-flight right-hand sides bounded while
	// still feeding a parallel solver; slot-indexed responses keep the
	// result independent of the worker count.
	const chunk = 128
	for base := 0; base < n; base += chunk {
		end := base + chunk
		if end > n {
			end = n
		}
		vs := make([][]float64, end-base)
		for k := range vs {
			vs[k] = b.ColVector(base + k)
		}
		ys, err := solver.SolveBatch(s, vs)
		if err != nil {
			return nil, err
		}
		copy(resp[base:end], ys)
	}
	em := newEntryMap(n)
	b.keptPairs(func(i, j int) {
		em.put(i, j, b.colDot(i, resp[j]))
	})
	return em.matrix(), nil
}

// FullGw computes the complete dense Gw = QᵀGQ from an explicit G (used to
// study thresholding against the exact transform on small examples).
func (b *Basis) FullGw(g *la.Dense) *la.Dense {
	n := b.N()
	gq := la.NewDense(n, n) // G·Q
	for j := 0; j < n; j++ {
		for _, e := range b.colVecs[j] {
			for i := 0; i < n; i++ {
				gq.Data[i*n+j] += e.val * g.At(i, e.row)
			}
		}
	}
	out := la.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for _, e := range b.colVecs[i] {
				sum += e.val * gq.At(e.row, j)
			}
			out.Set(i, j, sum)
		}
	}
	return out
}

// Apply computes Q·Gw·Qᵀ·x — the sparsified operator applied to contact
// voltages.
func (b *Basis) Apply(gw *sparse.Matrix, x []float64) []float64 {
	u := make([]float64, b.N())
	for c := range b.Cols {
		u[c] = b.colDot(c, x)
	}
	w := gw.MulVec(u)
	out := make([]float64, b.N())
	for c, wc := range w {
		if wc != 0 {
			b.colAdd(c, wc, out)
		}
	}
	return out
}

// ApproxColumn returns column j of Q·Gw·Qᵀ.
func (b *Basis) ApproxColumn(gw *sparse.Matrix, j int) []float64 {
	x := make([]float64, b.N())
	x[j] = 1
	return b.Apply(gw, x)
}
