// Package wavelet implements the Chapter 3 sparsification algorithm: a
// multilevel orthogonal change of basis Q built from vanishing polynomial
// moments, giving G ≈ Q·Gw·Qᵀ with sparse Q and (numerically) sparse Gw,
// extracted from O(log n) black-box solves via the combine-solves technique
// of §3.5.
//
// Construction (§3.4): in every finest-level square s the SVD of the moment
// matrix M_s splits the square's voltage space into V_s (nonvanishing
// moments, "slow-decaying") and W_s (vanishing moments up to order p,
// "fast-decaying"). On coarser levels the child V bases are recombined by
// the SVD of their parent-square moments into V_p and W_p. The W columns at
// all levels plus the level-0 V columns form Q.
package wavelet

import (
	"fmt"
	"sort"

	"subcouple/internal/geom"
	"subcouple/internal/la"
	"subcouple/internal/moments"
	"subcouple/internal/obs"
	"subcouple/internal/par"
	"subcouple/internal/quadtree"
	"subcouple/internal/sparse"
)

// ColKind distinguishes Q columns.
type ColKind int

const (
	// ColW is a vanishing-moments ("fast-decaying") basis vector.
	ColW ColKind = iota
	// ColV is a level-0 nonvanishing ("slow-decaying") basis vector.
	ColV
)

// ColInfo describes one column of Q.
type ColInfo struct {
	Kind   ColKind
	Level  int
	Square *quadtree.Square
	M      int // index within the square's W (or root V) block
}

// entry is one nonzero of a Q column.
type entry struct {
	row int
	val float64
}

// Basis is the constructed multilevel wavelet basis.
type Basis struct {
	Layout  *geom.Layout
	Tree    *quadtree.Tree
	P       int // moment order
	RankTol float64

	Cols    []ColInfo
	colVecs [][]entry
	// wCols[level][squareID] lists global column indices of that square's
	// W block, in order.
	wCols    [][][]int
	rootV    []int // global column indices of the level-0 V block
	maxWAt   []int // max W-block size per level
	droppedV int   // diagnostic: V columns surviving to level 0

	// Construction data retained for the O(n) factored form (§3.4.3):
	// per-finest-square full bases [V_s W_s], per-coarse-square
	// recombination blocks (T_p R_p), and per-square V-column counts.
	facFinest map[int]*la.Dense
	facCoarse map[int]*la.Dense
	facVCols  map[int]int

	rec *obs.Recorder // phase timers + solve counters; nil = no-op
	tr  *obs.Tracer   // per-level/per-square spans; nil = no-op
}

// NewBasis builds the wavelet basis for a layout already split so that no
// contact crosses a finest-level square boundary. p is the moment order
// (the thesis found p = 2 effective). Per-square moment SVDs run on all
// CPUs; use NewBasisWorkers to control the pool size.
func NewBasis(layout *geom.Layout, tree *quadtree.Tree, p int) (*Basis, error) {
	return NewBasisWorkers(layout, tree, p, 0)
}

// NewBasisWorkers is NewBasis with an explicit worker count for the
// per-square moment-matrix SVD splits (workers <= 0 selects
// runtime.NumCPU()). Each square's split is computed into its own slot and
// the splits are stitched into Q serially in square order, so the basis is
// bitwise-identical for any worker count.
func NewBasisWorkers(layout *geom.Layout, tree *quadtree.Tree, p, workers int) (*Basis, error) {
	return NewBasisRec(layout, tree, p, workers, nil)
}

// NewBasisRec is NewBasisWorkers with an obs.Recorder: the build is timed
// as phase "wavelet/basis" and later extraction calls on the returned basis
// report their phases and solve counters into rec. A nil rec records
// nothing.
func NewBasisRec(layout *geom.Layout, tree *quadtree.Tree, p, workers int, rec *obs.Recorder) (*Basis, error) {
	return NewBasisObs(layout, tree, p, workers, rec, nil)
}

// NewBasisObs is NewBasisRec with an obs.Tracer: the build emits one span
// per level ("wavelet/split_level") with per-square children on worker
// tracks, V-rank cuts land in the recorder's "wavelet/v_rank" numerics
// histogram, and extraction calls on the returned basis trace their
// schedule. Nil rec/tr record nothing; the basis is bitwise-identical
// either way.
func NewBasisObs(layout *geom.Layout, tree *quadtree.Tree, p, workers int, rec *obs.Recorder, tr *obs.Tracer) (*Basis, error) {
	defer rec.Phase("wavelet/basis")()
	if p < 0 {
		return nil, fmt.Errorf("wavelet: moment order must be >= 0")
	}
	b := &Basis{Layout: layout, Tree: tree, P: p, RankTol: 1e-9,
		facFinest: map[int]*la.Dense{}, facCoarse: map[int]*la.Dense{}, facVCols: map[int]int{}, rec: rec, tr: tr}
	L := tree.MaxLevel
	b.wCols = make([][][]int, L+1)
	b.maxWAt = make([]int, L+1)
	for lev := 0; lev <= L; lev++ {
		b.wCols[lev] = make([][]int, len(tree.SquaresAt(lev)))
	}

	// vBasis[squareID] at the current level: dense matrix over the square's
	// local contact ordering whose columns are the V (slow-decaying) basis
	// vectors of that square, expressed in the standard contact basis.
	vBasis := make(map[int]*la.Dense)

	// Finest level: split each square's standard basis by the SVD of M_s.
	// The SVDs are independent per square, so they run on the worker pool
	// into per-square slots; the serial stitch below preserves the exact
	// column ordering of a serial build.
	type split struct {
		q  *la.Dense
		vs int
	}
	finest := tree.SquaresAt(L)
	fsplits := make([]split, len(finest))
	lsp := tr.Begin("wavelet/split_level").Arg("level", L).Arg("squares", len(finest))
	par.DoWorker(workers, len(finest), func(worker, i int) {
		s := finest[i]
		if len(s.Contacts) == 0 {
			return
		}
		ssp := lsp.ChildOn(worker+1, "wavelet/split").
			Arg("square", s.ID).Arg("contacts", len(s.Contacts))
		cx, cy := tree.Center(s)
		m := moments.Matrix(layout, s.Contacts, cx, cy, p, tree.SideAt(L))
		sigma, q := la.FullRightBasis(m)
		fsplits[i] = split{q: q, vs: la.RankByThreshold(sigma, b.RankTol, 0)}
		ssp.Arg("v_rank", fsplits[i].vs).End()
	})
	lsp.End()
	for i, s := range finest {
		sp := fsplits[i]
		if sp.q == nil {
			continue
		}
		b.rec.Rank("wavelet/v_rank", sp.vs)
		vBasis[s.ID] = sp.q.Cols2(0, sp.vs)
		b.appendW(s, sp.q.Cols2(sp.vs, len(s.Contacts)), s.Contacts)
		b.facFinest[s.ID] = sp.q
		b.facVCols[levelKey(L, s.ID)] = sp.vs
	}

	// Coarser levels: recombine child V bases. Within a level the parent
	// recombinations only read the previous level's vBasis, so they run on
	// the worker pool the same way.
	type recomb struct {
		vNew, wNew, q *la.Dense
		vs            int
	}
	for lev := L - 1; lev >= 0; lev-- {
		squares := tree.SquaresAt(lev)
		rsplits := make([]recomb, len(squares))
		rlsp := tr.Begin("wavelet/recombine_level").Arg("level", lev).Arg("squares", len(squares))
		par.DoWorker(workers, len(squares), func(worker, i int) {
			s := squares[i]
			np := len(s.Contacts)
			if np == 0 {
				return
			}
			ssp := rlsp.ChildOn(worker+1, "wavelet/recombine").
				Arg("square", s.ID).Arg("contacts", np)
			defer ssp.End()
			rowOf := make(map[int]int, np)
			for r, ci := range s.Contacts {
				rowOf[ci] = r
			}
			// Assemble V_children in the parent's contact ordering.
			var totalCols int
			children := tree.Children(s)
			childV := make([]*la.Dense, len(children))
			for ci, c := range children {
				if v := vBasis[c.ID]; v != nil {
					childV[ci] = v
					totalCols += v.Cols
				}
			}
			vch := la.NewDense(np, totalCols)
			col := 0
			for ci, c := range children {
				v := childV[ci]
				if v == nil {
					continue
				}
				for r, contactIdx := range c.Contacts {
					pr := rowOf[contactIdx]
					for j := 0; j < v.Cols; j++ {
						vch.Set(pr, col+j, v.At(r, j))
					}
				}
				col += v.Cols
			}
			if totalCols == 0 {
				return
			}
			cx, cy := tree.Center(s)
			mp := moments.Matrix(layout, s.Contacts, cx, cy, p, tree.SideAt(lev))
			mv := la.Mul(mp, vch)
			sigma, q := la.FullRightBasis(mv)
			vs := la.RankByThreshold(sigma, b.RankTol, 0)
			ssp.Arg("v_rank", vs)
			rsplits[i] = recomb{
				vNew: la.Mul(vch, q.Cols2(0, vs)),
				wNew: la.Mul(vch, q.Cols2(vs, totalCols)),
				q:    q,
				vs:   vs,
			}
		})
		rlsp.End()
		next := make(map[int]*la.Dense)
		for i, s := range squares {
			r := rsplits[i]
			if r.q == nil {
				continue
			}
			b.rec.Rank("wavelet/v_rank", r.vs)
			next[s.ID] = r.vNew
			b.appendW(s, r.wNew, s.Contacts)
			b.facCoarse[levelKey(lev, s.ID)] = r.q
			b.facVCols[levelKey(lev, s.ID)] = r.vs
		}
		vBasis = next
	}

	// Level-0 V columns join Q as the nonvanishing root block.
	if v := vBasis[0]; v != nil {
		root := tree.At(0, 0, 0)
		for j := 0; j < v.Cols; j++ {
			idx := len(b.Cols)
			b.Cols = append(b.Cols, ColInfo{Kind: ColV, Level: 0, Square: root, M: j})
			var es []entry
			for r, ci := range root.Contacts {
				if x := v.At(r, j); x != 0 {
					es = append(es, entry{ci, x})
				}
			}
			b.colVecs = append(b.colVecs, es)
			b.rootV = append(b.rootV, idx)
		}
		b.droppedV = v.Cols
	}

	if len(b.Cols) != layout.N() {
		return nil, fmt.Errorf("wavelet: basis has %d columns for %d contacts", len(b.Cols), layout.N())
	}
	return b, nil
}

// appendW registers the columns of w (over the square's local contacts) as
// global Q columns.
func (b *Basis) appendW(s *quadtree.Square, w *la.Dense, contacts []int) {
	for j := 0; j < w.Cols; j++ {
		idx := len(b.Cols)
		b.Cols = append(b.Cols, ColInfo{Kind: ColW, Level: s.Level, Square: s, M: j})
		var es []entry
		for r, ci := range contacts {
			if x := w.At(r, j); x != 0 {
				es = append(es, entry{ci, x})
			}
		}
		b.colVecs = append(b.colVecs, es)
		b.wCols[s.Level][s.ID] = append(b.wCols[s.Level][s.ID], idx)
	}
	if n := len(b.wCols[s.Level][s.ID]); n > b.maxWAt[s.Level] {
		b.maxWAt[s.Level] = n
	}
}

// N returns the basis dimension (number of contacts).
func (b *Basis) N() int { return len(b.Cols) }

// Q materializes the change-of-basis matrix as a sparse matrix whose
// columns are ordered: level-0 V block first, then W blocks level by level
// from coarse to fine, squares in quadrant-hierarchical order within each
// level (the thesis's spy-plot ordering, §3.7.1).
func (b *Basis) Q() *sparse.Matrix {
	order := b.ColumnOrder()
	var ts []sparse.Triplet
	for newIdx, oldIdx := range order {
		for _, e := range b.colVecs[oldIdx] {
			ts = append(ts, sparse.Triplet{Row: e.row, Col: newIdx, Val: e.val})
		}
	}
	return sparse.FromTriplets(b.N(), b.N(), ts)
}

// ColumnOrder returns the presentation ordering of columns (old index per
// new position): root V, then W per level in quadrant-hierarchical square
// order.
func (b *Basis) ColumnOrder() []int {
	var order []int
	order = append(order, b.rootV...)
	for lev := 0; lev <= b.Tree.MaxLevel; lev++ {
		for _, s := range b.Tree.QuadrantOrder(lev) {
			order = append(order, b.wCols[lev][s.ID]...)
		}
	}
	return order
}

// colDot returns the inner product of Q column idx with a dense vector.
func (b *Basis) colDot(idx int, y []float64) float64 {
	var s float64
	for _, e := range b.colVecs[idx] {
		s += e.val * y[e.row]
	}
	return s
}

// colAdd accumulates Q column idx (scaled) into a dense vector.
func (b *Basis) colAdd(idx int, scale float64, y []float64) {
	for _, e := range b.colVecs[idx] {
		y[e.row] += scale * e.val
	}
}

// ColVector materializes Q column idx as a dense length-n vector.
func (b *Basis) ColVector(idx int) []float64 {
	v := make([]float64, b.N())
	b.colAdd(idx, 1, v)
	return v
}

// localAtLevel reports whether column j's square, seen from level lev,
// is local to square s at level lev (i.e. the ancestor of col j's square at
// lev is s or a neighbor of s). Requires col j's level >= lev.
func (b *Basis) localAtLevel(j int, s *quadtree.Square, lev int) bool {
	cs := b.Cols[j].Square
	shift := uint(cs.Level - lev)
	ai, aj := cs.I>>shift, cs.J>>shift
	di, dj := ai-s.I, aj-s.J
	if di < 0 {
		di = -di
	}
	if dj < 0 {
		dj = -dj
	}
	return di <= 1 && dj <= 1
}

// keptPairs enumerates the (i, j) index pairs of Gw entries that the §3.5
// locality assumption keeps, with i's level <= j's level and root-V columns
// interacting with everything. Pairs are emitted once (i <= j not
// guaranteed; use both orderings when assembling a symmetric matrix).
func (b *Basis) keptPairs(emit func(i, j int)) {
	// Root V with everything (including V-V).
	for _, vi := range b.rootV {
		for j := range b.Cols {
			emit(vi, j)
		}
	}
	// W-W pairs: coarse square s (level l) with all columns at level >= l
	// whose level-l ancestor is local to s.
	for lev := 0; lev <= b.Tree.MaxLevel; lev++ {
		for _, s := range b.Tree.SquaresAt(lev) {
			cols := b.wCols[lev][s.ID]
			if len(cols) == 0 {
				continue
			}
			targets := b.targetColumns(s, lev)
			for _, ci := range cols {
				for _, tj := range targets {
					emit(ci, tj)
				}
			}
		}
	}
}

// targetColumns lists all W columns at levels >= lev whose level-lev
// ancestor square is local to s.
func (b *Basis) targetColumns(s *quadtree.Square, lev int) []int {
	var out []int
	for _, q := range b.Tree.Local(s) {
		var rec func(sq *quadtree.Square)
		rec = func(sq *quadtree.Square) {
			out = append(out, b.wCols[sq.Level][sq.ID]...)
			for _, c := range b.Tree.Children(sq) {
				rec(c)
			}
		}
		rec(q)
	}
	sort.Ints(out)
	return out
}
