package wavelet_test

import (
	"math"
	"testing"

	"subcouple/internal/core"
	"subcouple/internal/experiments"
	"subcouple/internal/geom"
	"subcouple/internal/la"
	"subcouple/internal/quadtree"
	"subcouple/internal/solver"
	"subcouple/internal/wavelet"
)

func buildAndCheckWavelet(t *testing.T, layout *geom.Layout, maxLevel int, maxErr float64) {
	t.Helper()
	tree, err := quadtree.Build(layout, maxLevel)
	if err != nil {
		t.Fatal(err)
	}
	b, err := wavelet.NewBasis(layout, tree, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := experiments.SyntheticG(layout)
	gws, err := b.ExtractCombined(solver.NewDense(g))
	if err != nil {
		t.Fatal(err)
	}
	n := layout.N()
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(float64(2*i + 1))
	}
	want := g.MulVec(x)
	got := b.Apply(gws, x)
	diff := make([]float64, n)
	for i := range diff {
		diff[i] = got[i] - want[i]
	}
	if rel := la.Norm2(diff) / la.Norm2(want); rel > maxErr {
		t.Fatalf("wavelet operator error %g on %s", rel, layout.Name)
	}
}

func TestWaveletSparseIrregularLayout(t *testing.T) {
	layout := geom.IrregularSameSize(64, 64, 16, 16, 2, 0.3, 11)
	buildAndCheckWavelet(t, layout, 4, 0.02)
}

func TestWaveletMixedShapesLayout(t *testing.T) {
	raw := geom.MixedShapes(128)
	layout, maxLevel := core.Prepare(raw, 4)
	// Mixed sizes are where the wavelet method degrades (Ch. 4 intro);
	// allow a looser bound but require basic sanity.
	buildAndCheckWavelet(t, layout, maxLevel, 0.2)
}

func TestWaveletClusteredLayout(t *testing.T) {
	layout := &geom.Layout{A: 64, B: 64, Name: "clusters"}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			x0, y0 := 2+float64(i)*3, 2+float64(j)*3
			layout.Contacts = append(layout.Contacts,
				geom.Contact{Rect: geom.Rect{X0: x0, Y0: y0, X1: x0 + 1, Y1: y0 + 1}, Group: len(layout.Contacts)})
			x1, y1 := 44+float64(i)*3, 44+float64(j)*3
			layout.Contacts = append(layout.Contacts,
				geom.Contact{Rect: geom.Rect{X0: x1, Y0: y1, X1: x1 + 1, Y1: y1 + 1}, Group: len(layout.Contacts)})
		}
	}
	buildAndCheckWavelet(t, layout, 4, 0.05)
}
