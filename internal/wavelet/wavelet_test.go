package wavelet

import (
	"math"
	"testing"

	"subcouple/internal/bem"
	"subcouple/internal/geom"
	"subcouple/internal/la"
	"subcouple/internal/moments"
	"subcouple/internal/quadtree"
	"subcouple/internal/solver"
	"subcouple/internal/substrate"
)

func regularBasis(t *testing.T, p int) (*Basis, *geom.Layout) {
	t.Helper()
	layout := geom.RegularGrid(64, 64, 8, 8, 4)
	tree, err := quadtree.Build(layout, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBasis(layout, tree, p)
	if err != nil {
		t.Fatal(err)
	}
	return b, layout
}

// extractBasis builds the 256-contact regular example used by the
// extraction tests: deep enough (maxLevel 4) that combine-solves engages.
func extractBasis(t *testing.T) (*Basis, *geom.Layout) {
	t.Helper()
	layout := geom.RegularGrid(64, 64, 16, 16, 2)
	tree, err := quadtree.Build(layout, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBasis(layout, tree, 2)
	if err != nil {
		t.Fatal(err)
	}
	return b, layout
}

var gCache = map[string]*la.Dense{}

// exactG extracts the dense G for a small layout with the eigenfunction
// solver, memoized across tests.
func exactG(t *testing.T, layout *geom.Layout) *la.Dense {
	t.Helper()
	key := layout.Name
	if g, ok := gCache[key]; ok {
		return g
	}
	prof := substrate.TwoLayer(layout.A, 20, 1, true)
	s, err := bem.New(prof, layout, 64)
	if err != nil {
		t.Fatal(err)
	}
	g, err := solver.ExtractDense(s)
	if err != nil {
		t.Fatal(err)
	}
	gCache[key] = g
	return g
}

func TestBasisOrthogonal(t *testing.T) {
	for _, p := range []int{0, 1, 2} {
		b, _ := regularBasis(t, p)
		n := b.N()
		if n != 64 {
			t.Fatalf("p=%d: N=%d", p, n)
		}
		// QᵀQ = I.
		for i := 0; i < n; i++ {
			vi := b.ColVector(i)
			for j := i; j < n; j++ {
				dot := b.colDot(j, vi)
				want := 0.0
				if i == j {
					want = 1.0
				}
				if math.Abs(dot-want) > 1e-10 {
					t.Fatalf("p=%d: QᵀQ(%d,%d) = %g", p, i, j, dot)
				}
			}
		}
	}
}

func TestBasisOrthogonalIrregular(t *testing.T) {
	layout := geom.IrregularSameSize(64, 64, 16, 16, 2, 0.5, 3)
	tree, err := quadtree.Build(layout, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBasis(layout, tree, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := b.N()
	for i := 0; i < n; i += 7 {
		vi := b.ColVector(i)
		for j := 0; j < n; j++ {
			dot := b.colDot(j, vi)
			want := 0.0
			if i == j {
				want = 1.0
			}
			if math.Abs(dot-want) > 1e-10 {
				t.Fatalf("QᵀQ(%d,%d) = %g", i, j, dot)
			}
		}
	}
}

func TestWColumnsHaveVanishingMoments(t *testing.T) {
	p := 2
	b, layout := regularBasis(t, p)
	for idx, info := range b.Cols {
		if info.Kind != ColW {
			continue
		}
		s := info.Square
		cx, cy := b.Tree.Center(s)
		// Restrict the column to the square's contacts and take moments.
		v := make([]float64, len(s.Contacts))
		full := b.ColVector(idx)
		for r, ci := range s.Contacts {
			v[r] = full[ci]
		}
		mom := moments.OfVector(layout, s.Contacts, v, cx, cy, p, b.Tree.SideAt(s.Level))
		for k, m := range mom {
			if math.Abs(m) > 1e-8 {
				t.Fatalf("column %d (level %d) moment %d = %g, want 0", idx, info.Level, k, m)
			}
		}
		// Support confined to the square.
		for ci, x := range full {
			if x != 0 {
				in := false
				for _, sc := range s.Contacts {
					if sc == ci {
						in = true
					}
				}
				if !in {
					t.Fatalf("column %d has support outside its square", idx)
				}
			}
		}
	}
}

func TestHaarStructureP0(t *testing.T) {
	// p=0 on a 2x2-contacts-per-finest-square grid reproduces the Haar
	// picture of Figs 3-1..3-4: 3 balanced W vectors and 1 constant V per
	// square.
	layout := geom.RegularGrid(32, 32, 8, 8, 2)
	tree, err := quadtree.Build(layout, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBasis(layout, tree, 0)
	if err != nil {
		t.Fatal(err)
	}
	nW := 0
	for _, s := range tree.SquaresAt(2) {
		cols := b.wCols[2][s.ID]
		if len(cols) != 3 {
			t.Fatalf("finest square has %d W columns, want 3", len(cols))
		}
		nW += len(cols)
		for _, c := range cols {
			v := b.ColVector(c)
			var sum float64
			for _, x := range v {
				sum += x // equal-size contacts: zero mean = balanced voltage
			}
			if math.Abs(sum) > 1e-10 {
				t.Fatalf("W column %d not balanced: sum %g", c, sum)
			}
		}
	}
	if len(b.rootV) != 1 {
		t.Fatalf("root V block has %d columns, want 1 for p=0", len(b.rootV))
	}
	// All-ones root vector.
	rv := b.ColVector(b.rootV[0])
	for i := 1; i < len(rv); i++ {
		if math.Abs(rv[i]-rv[0]) > 1e-10 {
			t.Fatalf("root V not constant")
		}
	}
	if nW+len(b.rootV)+3+3*4 != b.N() {
		t.Fatalf("column count bookkeeping off: %d W + %d V of %d", nW, len(b.rootV), b.N())
	}
}

func TestQMatrixMatchesColumns(t *testing.T) {
	b, _ := regularBasis(t, 2)
	q := b.Q()
	if q.Rows != b.N() || q.Cols != b.N() {
		t.Fatalf("Q shape %dx%d", q.Rows, q.Cols)
	}
	order := b.ColumnOrder()
	for newIdx, oldIdx := range order {
		v := b.ColVector(oldIdx)
		for r := 0; r < b.N(); r++ {
			if math.Abs(q.At(r, newIdx)-v[r]) > 1e-14 {
				t.Fatalf("Q column %d mismatch at row %d", newIdx, r)
			}
		}
	}
}

func TestExtractDirectMatchesFullGwOnKeptEntries(t *testing.T) {
	b, layout := extractBasis(t)
	g := exactG(t, layout)
	ds := solver.NewDense(g)
	gws, err := b.ExtractDirect(ds)
	if err != nil {
		t.Fatal(err)
	}
	full := b.FullGw(g)
	scale := full.MaxAbs()
	// Every stored entry equals the exact transform entry.
	for r := 0; r < gws.Rows; r++ {
		for k := gws.RowPtr[r]; k < gws.RowPtr[r+1]; k++ {
			c := gws.ColIdx[k]
			if math.Abs(gws.Val[k]-full.At(r, c)) > 1e-9*scale {
				t.Fatalf("kept entry (%d,%d) = %g, exact %g", r, c, gws.Val[k], full.At(r, c))
			}
		}
	}
	// The kept-pattern sparsity factor grows with n (O(n log n) nonzeros);
	// at n=256 it is modest.
	if gws.Sparsity() < 1.25 {
		t.Fatalf("locality pattern kept too much: sparsity %g", gws.Sparsity())
	}
}

func TestCombineSolvesMatchesDirect(t *testing.T) {
	b, layout := extractBasis(t)
	g := exactG(t, layout)
	direct, err := b.ExtractDirect(solver.NewDense(g))
	if err != nil {
		t.Fatal(err)
	}
	counting := solver.NewCounting(solver.NewDense(g))
	combined, err := b.ExtractCombined(counting)
	if err != nil {
		t.Fatal(err)
	}
	if counting.Solves >= 8*b.N()/10 {
		t.Fatalf("combine-solves used %d solves for n=%d", counting.Solves, b.N())
	}
	if combined.NNZ() != direct.NNZ() {
		t.Fatalf("entry patterns differ: %d vs %d", combined.NNZ(), direct.NNZ())
	}
	scale := direct.MaxAbs()
	var maxDiff float64
	for r := 0; r < combined.Rows; r++ {
		for k := combined.RowPtr[r]; k < combined.RowPtr[r+1]; k++ {
			d := math.Abs(combined.Val[k] - direct.At(r, combined.ColIdx[k]))
			if d > maxDiff {
				maxDiff = d
			}
		}
	}
	if maxDiff > 0.02*scale {
		t.Fatalf("combine-solves entries deviate by %g (scale %g)", maxDiff, scale)
	}
}

func TestSparsifiedOperatorAccuracy(t *testing.T) {
	b, layout := extractBasis(t)
	g := exactG(t, layout)
	gws, err := b.ExtractCombined(solver.NewDense(g))
	if err != nil {
		t.Fatal(err)
	}
	// Q·Gws·Qᵀ must reproduce G to a few percent entrywise relative to the
	// largest entry, on this friendly regular layout.
	scale := g.MaxAbs()
	var worst float64
	for j := 0; j < b.N(); j++ {
		col := b.ApproxColumn(gws, j)
		for i := range col {
			if d := math.Abs(col[i]-g.At(i, j)) / scale; d > worst {
				worst = d
			}
		}
	}
	if worst > 0.02 {
		t.Fatalf("sparsified operator error %g too large", worst)
	}
}

func TestApplyMatchesApproxColumn(t *testing.T) {
	b, layout := regularBasis(t, 2)
	g := exactG(t, layout)
	gws, err := b.ExtractDirect(solver.NewDense(g))
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, b.N())
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	y := b.Apply(gws, x)
	// Compare against summing columns.
	want := make([]float64, b.N())
	for j, xj := range x {
		col := b.ApproxColumn(gws, j)
		for i := range want {
			want[i] += xj * col[i]
		}
	}
	for i := range y {
		if math.Abs(y[i]-want[i]) > 1e-9 {
			t.Fatalf("Apply mismatch at %d", i)
		}
	}
}

func TestBasisRejectsNegativeOrder(t *testing.T) {
	layout := geom.RegularGrid(16, 16, 4, 4, 2)
	tree, err := quadtree.Build(layout, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBasis(layout, tree, -1); err == nil {
		t.Fatalf("expected error for p < 0")
	}
}
